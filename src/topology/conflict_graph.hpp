// Link conflict ("contention") graph.
//
// Two wireless links contend when they cannot carry simultaneous
// successful exchanges. Under RTS/CTS both endpoints of a link are active
// during an exchange (RTS/DATA from the sender, CTS/ACK from the
// receiver), so links (i,j) and (u,v) conflict when they share a node or
// when any endpoint of one is within carrier-sense/interference range of
// any endpoint of the other. This matches the medium model in
// src/phys, so cliques computed here are exactly the airtime constraints
// the MAC enforces.
#pragma once

#include <vector>

#include "topology/link.hpp"
#include "topology/topology.hpp"

namespace maxmin::topo {

class ConflictGraph {
 public:
  /// Build over an explicit set of (distinct) directed links. Each link's
  /// endpoints must be one-hop neighbors.
  ConflictGraph(const Topology& topo, std::vector<Link> links);

  static bool linksConflict(const Topology& topo, Link a, Link b);

  const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] int numLinks() const { return static_cast<int>(links_.size()); }

  [[nodiscard]] bool conflicts(int a, int b) const {
    return adjacency_.at(static_cast<std::size_t>(a))
        .at(static_cast<std::size_t>(b));
  }

  /// Index of a link in links(), or -1 if absent.
  [[nodiscard]] int indexOf(Link l) const;

 private:
  std::vector<Link> links_;
  std::vector<std::vector<bool>> adjacency_;
};

}  // namespace maxmin::topo
