// Static shortest-path routing.
//
// The paper assumes any routing protocol that yields acyclic
// per-destination routes (distance-vector, link-state, or geographic); we
// provide deterministic BFS shortest paths with smallest-id tie-breaking,
// which produces the per-destination in-trees the virtual networks of
// §5.2 are built on.
#pragma once

#include <vector>

#include "topology/link.hpp"
#include "topology/topology.hpp"

namespace maxmin::topo {

/// Next hop toward one destination for every node.
class RoutingTree {
 public:
  /// Shortest paths from every node to `dest` over the neighbor graph.
  /// Unreachable nodes get kNoNode.
  static RoutingTree shortestPaths(const Topology& topo, NodeId dest);

  [[nodiscard]] NodeId destination() const { return dest_; }

  /// Next hop from `from` toward the destination; kNoNode if `from` is the
  /// destination or disconnected from it.
  [[nodiscard]] NodeId nextHop(NodeId from) const {
    return nextHop_.at(static_cast<std::size_t>(from));
  }

  [[nodiscard]] bool reaches(NodeId from) const {
    return from == dest_ || nextHop(from) != kNoNode;
  }

  /// Full path from `from` to the destination, inclusive of both ends.
  /// Empty if unreachable.
  [[nodiscard]] std::vector<NodeId> pathFrom(NodeId from) const;

  /// Number of hops from `from` to the destination (0 when from == dest);
  /// -1 if unreachable.
  [[nodiscard]] int hopCount(NodeId from) const;

 private:
  NodeId dest_ = kNoNode;
  std::vector<NodeId> nextHop_;
};

}  // namespace maxmin::topo
