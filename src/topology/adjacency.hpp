// Packed adjacency relation over node ids: one bit per ordered pair,
// stored as rows of uint64_t words so membership is a single bit test
// and row intersections are word-wise ANDs.
//
// This is the frame-pipeline view of the radio graph. The geometric
// predicates (Topology::areNeighbors / inCsRange) cost a squared-distance
// comparison per call; per-frame code instead asks the precomputed matrix
// (phys::Medium's corruption scan intersects a row with its pending-
// reception bitset). Rows are contiguous, so scanning a row at N = 800 is
// 13 sequential words, not 800 pointer-chased distance computations.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/node_id.hpp"
#include "util/check.hpp"

namespace maxmin::topo {

class AdjacencyMatrix {
 public:
  AdjacencyMatrix() = default;
  explicit AdjacencyMatrix(int nodes);

  [[nodiscard]] int numNodes() const { return nodes_; }
  /// uint64_t words per row (= ceil(numNodes / 64)).
  [[nodiscard]] std::size_t wordsPerRow() const { return words_; }

  /// Set the (a, b) bit. Construction-time only; not symmetric by itself.
  void set(NodeId a, NodeId b) {
    bits_[rowOffset(a) + wordOf(b)] |= maskOf(b);
  }

  /// O(1): true when the (a, b) bit is set.
  [[nodiscard]] bool test(NodeId a, NodeId b) const {
    return (bits_[rowOffset(a) + wordOf(b)] & maskOf(b)) != 0;
  }

  /// Raw word pointer for row `a` (wordsPerRow() words): the hot-path
  /// accessor for word-wise intersections with other bitsets.
  [[nodiscard]] const std::uint64_t* row(NodeId a) const {
    return bits_.data() + rowOffset(a);
  }

  /// Number of set bits in row `a` (the node's degree).
  [[nodiscard]] int rowDegree(NodeId a) const;

  /// Calls fn(NodeId) for every set bit in row `a`, ascending.
  template <typename Fn>
  void forEachInRow(NodeId a, Fn&& fn) const {
    const std::uint64_t* r = row(a);
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t word = r[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(bit)));
        word &= word - 1;
      }
    }
  }

 private:
  [[nodiscard]] std::size_t rowOffset(NodeId a) const {
    MAXMIN_CHECK_MSG(a >= 0 && a < nodes_, "bad node id " << a);
    return static_cast<std::size_t>(a) * words_;
  }
  static std::size_t wordOf(NodeId b) {
    return static_cast<std::size_t>(b) / 64;
  }
  static std::uint64_t maskOf(NodeId b) {
    return std::uint64_t{1} << (static_cast<std::size_t>(b) % 64);
  }

  int nodes_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace maxmin::topo
