// Node identity, split out of topology.hpp so low-level containers
// (AdjacencyMatrix) can name nodes without pulling in the full Topology.
#pragma once

#include <cstdint>

namespace maxmin::topo {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

}  // namespace maxmin::topo
