#include "topology/dominating_set.hpp"

#include <algorithm>
#include <span>

namespace maxmin::topo {

namespace {

bool allAlive(NodeId /*a*/, NodeId /*b*/) { return true; }

// All working sets here are sorted NodeId vectors bounded by the 2-hop
// neighborhood, fed from the topology's CSR rows (which are ascending):
// no tree nodes, no O(n) state, so repair paths stay cheap as N grows.

bool sortedContains(const std::vector<NodeId>& v, NodeId x) {
  return std::binary_search(v.begin(), v.end(), x);
}

void sortedErase(std::vector<NodeId>& v, NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) v.erase(it);
}

void sortUnique(std::vector<NodeId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// Shared greedy set cover: pick candidates (already filtered by the
/// caller) until every target is covered or no candidate helps. Ties
/// break toward the smaller node id for determinism (candidates are
/// iterated ascending, so the first max-gain candidate wins).
std::vector<NodeId> greedyCover(const Topology& topo,
                                std::vector<NodeId> uncovered,
                                std::vector<NodeId> candidates,
                                const LinkAliveFn& linkAlive) {
  std::vector<NodeId> chosen;
  while (!uncovered.empty() && !candidates.empty()) {
    NodeId best = kNoNode;
    std::size_t bestGain = 0;
    for (NodeId c : candidates) {
      std::size_t gain = 0;
      for (NodeId n : topo.neighbors(c)) {
        if (sortedContains(uncovered, n) && linkAlive(c, n)) ++gain;
      }
      if (gain > bestGain || (gain == bestGain && gain > 0 && c < best)) {
        best = c;
        bestGain = gain;
      }
    }
    if (bestGain == 0) break;  // remaining targets unreachable via relays
    chosen.push_back(best);
    sortedErase(candidates, best);
    for (NodeId n : topo.neighbors(best)) {
      if (linkAlive(best, n)) sortedErase(uncovered, n);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace

std::vector<NodeId> computeDominatingSet(const Topology& topo, NodeId center) {
  // Targets: two-hop neighbors not already covered by center's own
  // broadcast (i.e. not one-hop neighbors).
  const std::span<const NodeId> oneHop = topo.neighbors(center);
  std::vector<NodeId> uncovered;
  for (NodeId n : topo.twoHopNeighborhood(center)) {
    if (!std::binary_search(oneHop.begin(), oneHop.end(), n)) {
      uncovered.push_back(n);  // two-hop rows are ascending
    }
  }
  return greedyCover(topo, std::move(uncovered),
                     {oneHop.begin(), oneHop.end()}, allAlive);
}

std::vector<NodeId> computeDominatingSet(const Topology& topo, NodeId center,
                                         const std::vector<char>& nodeAlive,
                                         const LinkAliveFn& linkAlive) {
  const auto alive = [&](NodeId n) {
    return nodeAlive[static_cast<std::size_t>(n)] != 0;
  };
  // Candidates: alive one-hop neighbors that can actually hear center.
  std::vector<NodeId> candidates;
  for (NodeId n : topo.neighbors(center)) {
    if (alive(n) && linkAlive(center, n)) candidates.push_back(n);
  }
  // Targets: every alive node in the 2-hop scope that does not hear the
  // origin's own broadcast — including a one-hop neighbor whose direct
  // link is cut (it must now be covered via a relay). Whether a target is
  // still reachable is greedyCover's problem (uncoverable targets are
  // simply dropped, the same way the static overload drops them).
  std::vector<NodeId> uncovered;
  for (NodeId n : topo.twoHopNeighborhood(center)) {
    if (alive(n) && !sortedContains(candidates, n)) uncovered.push_back(n);
  }
  return greedyCover(topo, std::move(uncovered), std::move(candidates),
                     linkAlive);
}

std::vector<NodeId> relayCoverage(const Topology& topo, NodeId center,
                                  const std::vector<NodeId>& relays) {
  std::vector<NodeId> covered;
  const auto oneHop = topo.neighbors(center);
  covered.assign(oneHop.begin(), oneHop.end());
  for (NodeId r : relays) {
    const auto row = topo.neighbors(r);
    covered.insert(covered.end(), row.begin(), row.end());
  }
  sortUnique(covered);
  sortedErase(covered, center);
  return covered;
}

std::vector<NodeId> relayCoverage(const Topology& topo, NodeId center,
                                  const std::vector<NodeId>& relays,
                                  const std::vector<char>& nodeAlive,
                                  const LinkAliveFn& linkAlive) {
  const auto alive = [&](NodeId n) {
    return nodeAlive[static_cast<std::size_t>(n)] != 0;
  };
  std::vector<NodeId> covered;
  if (alive(center)) {
    for (NodeId n : topo.neighbors(center)) {
      if (alive(n) && linkAlive(center, n)) covered.push_back(n);
    }
  }
  for (NodeId r : relays) {
    if (!alive(r) || !linkAlive(center, r)) continue;  // relay heard nothing
    for (NodeId n : topo.neighbors(r)) {
      if (alive(n) && linkAlive(r, n)) covered.push_back(n);
    }
  }
  sortUnique(covered);
  sortedErase(covered, center);
  return covered;
}

std::vector<NodeId> reachableTwoHop(const Topology& topo, NodeId center,
                                    const std::vector<char>& nodeAlive,
                                    const LinkAliveFn& linkAlive) {
  const auto alive = [&](NodeId n) {
    return nodeAlive[static_cast<std::size_t>(n)] != 0;
  };
  if (!alive(center)) return {};
  std::vector<NodeId> reach;
  for (NodeId n : topo.neighbors(center)) {
    if (!alive(n) || !linkAlive(center, n)) continue;
    reach.push_back(n);
    for (NodeId m : topo.neighbors(n)) {
      if (alive(m) && linkAlive(n, m)) reach.push_back(m);
    }
  }
  sortUnique(reach);
  sortedErase(reach, center);
  return reach;
}

}  // namespace maxmin::topo
