#include "topology/dominating_set.hpp"

#include <algorithm>
#include <set>

namespace maxmin::topo {

namespace {

bool allAlive(NodeId /*a*/, NodeId /*b*/) { return true; }

/// Shared greedy set cover: pick candidates (already filtered by the
/// caller) until every target is covered or no candidate helps. Ties
/// break toward the smaller node id for determinism.
std::vector<NodeId> greedyCover(const Topology& topo,
                                std::set<NodeId> uncovered,
                                std::set<NodeId> candidates,
                                const LinkAliveFn& linkAlive) {
  std::vector<NodeId> chosen;
  while (!uncovered.empty() && !candidates.empty()) {
    NodeId best = kNoNode;
    std::size_t bestGain = 0;
    for (NodeId c : candidates) {
      std::size_t gain = 0;
      for (NodeId n : topo.neighbors(c)) {
        if (uncovered.contains(n) && linkAlive(c, n)) ++gain;
      }
      if (gain > bestGain || (gain == bestGain && gain > 0 && c < best)) {
        best = c;
        bestGain = gain;
      }
    }
    if (bestGain == 0) break;  // remaining targets unreachable via relays
    chosen.push_back(best);
    candidates.erase(best);
    for (NodeId n : topo.neighbors(best)) {
      if (linkAlive(best, n)) uncovered.erase(n);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace

std::vector<NodeId> computeDominatingSet(const Topology& topo, NodeId center) {
  // Targets: two-hop neighbors not already covered by center's own
  // broadcast (i.e. not one-hop neighbors).
  const std::vector<NodeId> oneHop = topo.neighbors(center);
  std::set<NodeId> uncovered;
  for (NodeId n : topo.twoHopNeighborhood(center)) {
    if (!std::binary_search(oneHop.begin(), oneHop.end(), n)) {
      uncovered.insert(n);
    }
  }
  return greedyCover(topo, std::move(uncovered),
                     {oneHop.begin(), oneHop.end()}, allAlive);
}

std::vector<NodeId> computeDominatingSet(const Topology& topo, NodeId center,
                                         const std::vector<char>& nodeAlive,
                                         const LinkAliveFn& linkAlive) {
  const auto alive = [&](NodeId n) {
    return nodeAlive[static_cast<std::size_t>(n)] != 0;
  };
  // Candidates: alive one-hop neighbors that can actually hear center.
  std::set<NodeId> candidates;
  for (NodeId n : topo.neighbors(center)) {
    if (alive(n) && linkAlive(center, n)) candidates.insert(n);
  }
  // Targets: every alive node in the 2-hop scope that does not hear the
  // origin's own broadcast — including a one-hop neighbor whose direct
  // link is cut (it must now be covered via a relay). Whether a target is
  // still reachable is greedyCover's problem (uncoverable targets are
  // simply dropped, the same way the static overload drops them).
  std::set<NodeId> uncovered;
  for (NodeId n : topo.twoHopNeighborhood(center)) {
    if (alive(n) && !candidates.contains(n)) uncovered.insert(n);
  }
  return greedyCover(topo, std::move(uncovered), std::move(candidates),
                     linkAlive);
}

std::vector<NodeId> relayCoverage(const Topology& topo, NodeId center,
                                  const std::vector<NodeId>& relays) {
  std::set<NodeId> covered;
  for (NodeId n : topo.neighbors(center)) covered.insert(n);
  for (NodeId r : relays) {
    for (NodeId n : topo.neighbors(r)) covered.insert(n);
  }
  covered.erase(center);
  return {covered.begin(), covered.end()};
}

std::vector<NodeId> relayCoverage(const Topology& topo, NodeId center,
                                  const std::vector<NodeId>& relays,
                                  const std::vector<char>& nodeAlive,
                                  const LinkAliveFn& linkAlive) {
  const auto alive = [&](NodeId n) {
    return nodeAlive[static_cast<std::size_t>(n)] != 0;
  };
  std::set<NodeId> covered;
  if (alive(center)) {
    for (NodeId n : topo.neighbors(center)) {
      if (alive(n) && linkAlive(center, n)) covered.insert(n);
    }
  }
  for (NodeId r : relays) {
    if (!alive(r) || !linkAlive(center, r)) continue;  // relay heard nothing
    for (NodeId n : topo.neighbors(r)) {
      if (alive(n) && linkAlive(r, n)) covered.insert(n);
    }
  }
  covered.erase(center);
  return {covered.begin(), covered.end()};
}

std::vector<NodeId> reachableTwoHop(const Topology& topo, NodeId center,
                                    const std::vector<char>& nodeAlive,
                                    const LinkAliveFn& linkAlive) {
  const auto alive = [&](NodeId n) {
    return nodeAlive[static_cast<std::size_t>(n)] != 0;
  };
  std::set<NodeId> reach;
  if (!alive(center)) return {};
  for (NodeId n : topo.neighbors(center)) {
    if (!alive(n) || !linkAlive(center, n)) continue;
    reach.insert(n);
    for (NodeId m : topo.neighbors(n)) {
      if (alive(m) && linkAlive(n, m)) reach.insert(m);
    }
  }
  reach.erase(center);
  return {reach.begin(), reach.end()};
}

}  // namespace maxmin::topo
