#include "topology/dominating_set.hpp"

#include <algorithm>
#include <set>

namespace maxmin::topo {

std::vector<NodeId> computeDominatingSet(const Topology& topo, NodeId center) {
  // Targets: two-hop neighbors not already covered by center's own
  // broadcast (i.e. not one-hop neighbors).
  const std::vector<NodeId> oneHop = topo.neighbors(center);
  std::set<NodeId> uncovered;
  for (NodeId n : topo.twoHopNeighborhood(center)) {
    if (!std::binary_search(oneHop.begin(), oneHop.end(), n)) {
      uncovered.insert(n);
    }
  }

  std::vector<NodeId> chosen;
  std::set<NodeId> candidates(oneHop.begin(), oneHop.end());
  while (!uncovered.empty() && !candidates.empty()) {
    NodeId best = kNoNode;
    std::size_t bestGain = 0;
    for (NodeId c : candidates) {
      std::size_t gain = 0;
      for (NodeId n : topo.neighbors(c)) {
        if (uncovered.contains(n)) ++gain;
      }
      if (gain > bestGain || (gain == bestGain && gain > 0 && c < best)) {
        best = c;
        bestGain = gain;
      }
    }
    if (bestGain == 0) break;  // remaining targets unreachable via relays
    chosen.push_back(best);
    candidates.erase(best);
    for (NodeId n : topo.neighbors(best)) uncovered.erase(n);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<NodeId> relayCoverage(const Topology& topo, NodeId center,
                                  const std::vector<NodeId>& relays) {
  std::set<NodeId> covered;
  for (NodeId n : topo.neighbors(center)) covered.insert(n);
  for (NodeId r : relays) {
    for (NodeId n : topo.neighbors(r)) covered.insert(n);
  }
  covered.erase(center);
  return {covered.begin(), covered.end()};
}

}  // namespace maxmin::topo
