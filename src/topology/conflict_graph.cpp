#include "topology/conflict_graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace maxmin::topo {

ConflictGraph::ConflictGraph(const Topology& topo, std::vector<Link> links)
    : links_{std::move(links)} {
  std::sort(links_.begin(), links_.end());
  MAXMIN_CHECK_MSG(
      std::adjacent_find(links_.begin(), links_.end()) == links_.end(),
      "duplicate links in conflict graph");
  for (const Link& l : links_) {
    MAXMIN_CHECK_MSG(topo.areNeighbors(l.from, l.to),
                     "link " << l << " endpoints are not neighbors");
  }
  const std::size_t n = links_.size();
  adjacency_.assign(n, std::vector<bool>(n, false));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (linksConflict(topo, links_[a], links_[b])) {
        adjacency_[a][b] = adjacency_[b][a] = true;
      }
    }
  }
}

bool ConflictGraph::linksConflict(const Topology& topo, Link a, Link b) {
  if (a.from == b.from || a.from == b.to || a.to == b.from || a.to == b.to) {
    return true;  // shared radio: a node transmits or receives one frame at a time
  }
  const NodeId ea[2] = {a.from, a.to};
  const NodeId eb[2] = {b.from, b.to};
  for (NodeId x : ea) {
    for (NodeId y : eb) {
      if (topo.inCsRange(x, y)) return true;
    }
  }
  return false;
}

int ConflictGraph::indexOf(Link l) const {
  const auto it = std::lower_bound(links_.begin(), links_.end(), l);
  if (it == links_.end() || *it != l) return -1;
  return static_cast<int>(it - links_.begin());
}

}  // namespace maxmin::topo
