// Per-node dominating sets for 2-hop dissemination.
//
// After deployment each node i identifies a minimal subset of its one-hop
// neighbors whose own neighborhoods cover all of i's two-hop neighbors;
// rebroadcast by just those nodes reaches the full 2-hop scope (paper §6.2,
// Step 2). Minimum set cover is NP-hard; we use the standard greedy
// approximation, with ties broken toward the smaller node id for
// determinism.
//
// The fault-aware overloads recompute the same greedy cover against the
// *currently alive* subgraph: dead nodes are neither candidates nor
// targets, and cut links carry neither the origin's broadcast nor a
// relay's rebroadcast. They take the live state as a node vector plus a
// link predicate so the topology layer stays independent of sim's
// FaultPlane (callers pass `faults->linkUp` or an always-true lambda).
#pragma once

#include <functional>
#include <vector>

#include "topology/topology.hpp"

namespace maxmin::topo {

/// True iff the undirected link (a, b) currently carries frames.
using LinkAliveFn = std::function<bool(NodeId, NodeId)>;

/// One-hop neighbors of `center` chosen as rebroadcasters. Two-hop
/// neighbors reachable through no one-hop neighbor (impossible in a
/// consistent topology) would be ignored.
std::vector<NodeId> computeDominatingSet(const Topology& topo, NodeId center);

/// Fault-aware variant: candidates are alive one-hop neighbors with a
/// live link from `center`; targets are alive two-hop neighbors still
/// reachable through some candidate's live link. Reduces to the overload
/// above when everything is alive.
std::vector<NodeId> computeDominatingSet(const Topology& topo, NodeId center,
                                         const std::vector<char>& nodeAlive,
                                         const LinkAliveFn& linkAlive);

/// Nodes reached by a broadcast from `center` relayed once by `relays`:
/// the union of center's neighbors and the relays' neighbors, minus
/// center itself. Used by tests to verify 2-hop coverage.
std::vector<NodeId> relayCoverage(const Topology& topo, NodeId center,
                                  const std::vector<NodeId>& relays);

/// Fault-aware coverage: only alive neighbors heard over live links
/// count, and dead relays relay nothing.
std::vector<NodeId> relayCoverage(const Topology& topo, NodeId center,
                                  const std::vector<NodeId>& relays,
                                  const std::vector<char>& nodeAlive,
                                  const LinkAliveFn& linkAlive);

/// The targets a 2-hop dissemination from `center` must reach under the
/// current fault state: alive strict two-hop neighbors reachable via an
/// alive one-hop neighbor over live links, plus center's own alive
/// one-hop neighbors. The oracle for self-healing coverage checks.
std::vector<NodeId> reachableTwoHop(const Topology& topo, NodeId center,
                                    const std::vector<char>& nodeAlive,
                                    const LinkAliveFn& linkAlive);

}  // namespace maxmin::topo
