// Per-node dominating sets for 2-hop dissemination.
//
// After deployment each node i identifies a minimal subset of its one-hop
// neighbors whose own neighborhoods cover all of i's two-hop neighbors;
// rebroadcast by just those nodes reaches the full 2-hop scope (paper §6.2,
// Step 2). Minimum set cover is NP-hard; we use the standard greedy
// approximation, with ties broken toward the smaller node id for
// determinism.
#pragma once

#include <vector>

#include "topology/topology.hpp"

namespace maxmin::topo {

/// One-hop neighbors of `center` chosen as rebroadcasters. Two-hop
/// neighbors reachable through no one-hop neighbor (impossible in a
/// consistent topology) would be ignored.
std::vector<NodeId> computeDominatingSet(const Topology& topo, NodeId center);

/// Nodes reached by a broadcast from `center` relayed once by `relays`:
/// the union of center's neighbors and the relays' neighbors, minus
/// center itself. Used by tests to verify 2-hop coverage.
std::vector<NodeId> relayCoverage(const Topology& topo, NodeId center,
                                  const std::vector<NodeId>& relays);

}  // namespace maxmin::topo
