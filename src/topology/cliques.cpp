#include "topology/cliques.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace maxmin::topo {
namespace {

/// Classic Bron-Kerbosch with pivot selection. Vertex sets are plain
/// sorted vectors. The per-vertex conflict neighbor lists are built once
/// up front (cliques are enumerated per 2-hop LocalView, so a vertex's
/// neighbors are asked for many times during the recursion — recomputing
/// them was an O(links) scan per query).
class BronKerbosch {
 public:
  explicit BronKerbosch(const ConflictGraph& graph) : graph_{graph} {
    const auto n = static_cast<std::size_t>(graph.numLinks());
    neighbors_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t u = 0; u < n; ++u) {
        if (u != v && graph.conflicts(static_cast<int>(v),
                                      static_cast<int>(u))) {
          neighbors_[v].push_back(static_cast<int>(u));
        }
      }
    }
  }

  std::vector<std::vector<int>> run() {
    std::vector<int> all(static_cast<std::size_t>(graph_.numLinks()));
    for (int i = 0; i < graph_.numLinks(); ++i)
      all[static_cast<std::size_t>(i)] = i;
    expand({}, all, {});
    return std::move(found_);
  }

 private:
  const std::vector<int>& neighborsOf(int v) const {
    return neighbors_.at(static_cast<std::size_t>(v));
  }

  static std::vector<int> intersect(const std::vector<int>& a,
                                    const std::vector<int>& b) {
    std::vector<int> out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
  }

  void expand(std::vector<int> r, std::vector<int> p, std::vector<int> x) {
    if (p.empty() && x.empty()) {
      found_.push_back(std::move(r));
      return;
    }
    // Pivot: vertex of P∪X with the most neighbors in P minimizes branching.
    int pivot = -1;
    std::size_t best = 0;
    for (const auto* set : {&p, &x}) {
      for (int v : *set) {
        const std::size_t k = intersect(p, neighborsOf(v)).size();
        if (pivot == -1 || k > best) {
          pivot = v;
          best = k;
        }
      }
    }
    const std::vector<int>& pivotNeighbors = neighborsOf(pivot);
    std::vector<int> candidates;
    std::set_difference(p.begin(), p.end(), pivotNeighbors.begin(),
                        pivotNeighbors.end(), std::back_inserter(candidates));
    for (int v : candidates) {
      const std::vector<int>& nv = neighborsOf(v);
      std::vector<int> r2 = r;
      r2.insert(std::lower_bound(r2.begin(), r2.end(), v), v);
      expand(std::move(r2), intersect(p, nv), intersect(x, nv));
      p.erase(std::lower_bound(p.begin(), p.end(), v));
      x.insert(std::lower_bound(x.begin(), x.end(), v), v);
    }
  }

  const ConflictGraph& graph_;
  std::vector<std::vector<int>> neighbors_;
  std::vector<std::vector<int>> found_;
};

NodeId smallestNode(const ConflictGraph& graph, const std::vector<int>& clique) {
  NodeId smallest = kNoNode;
  for (int idx : clique) {
    const Link& l = graph.links().at(static_cast<std::size_t>(idx));
    const NodeId lo = std::min(l.from, l.to);
    if (smallest == kNoNode || lo < smallest) smallest = lo;
  }
  return smallest;
}

}  // namespace

std::vector<Clique> enumerateMaximalCliques(const ConflictGraph& graph) {
  std::vector<std::vector<int>> raw = BronKerbosch{graph}.run();
  if (graph.numLinks() == 0) return {};

  // Deterministic order: by owning (smallest) node, then by member list.
  std::map<NodeId, std::vector<std::vector<int>>> byOwner;
  for (auto& c : raw) byOwner[smallestNode(graph, c)].push_back(std::move(c));

  std::vector<Clique> cliques;
  for (auto& [owner, group] : byOwner) {
    std::sort(group.begin(), group.end());
    int seq = 0;
    for (auto& members : group) {
      cliques.push_back(Clique{CliqueId{owner, seq++}, std::move(members)});
    }
  }

  // Invariant: every link belongs to at least one clique.
  std::vector<bool> covered(static_cast<std::size_t>(graph.numLinks()), false);
  for (const Clique& c : cliques)
    for (int idx : c.linkIndices) covered[static_cast<std::size_t>(idx)] = true;
  MAXMIN_CHECK(std::all_of(covered.begin(), covered.end(),
                           [](bool b) { return b; }));
  return cliques;
}

std::vector<std::vector<int>> cliquesByLink(const ConflictGraph& graph,
                                            const std::vector<Clique>& cliques) {
  std::vector<std::vector<int>> result(
      static_cast<std::size_t>(graph.numLinks()));
  for (std::size_t c = 0; c < cliques.size(); ++c) {
    for (int idx : cliques[c].linkIndices) {
      result.at(static_cast<std::size_t>(idx)).push_back(static_cast<int>(c));
    }
  }
  return result;
}

}  // namespace maxmin::topo
