// Directed wireless link identifier (forwarding direction matters: the
// paper's link (i, j) is "i forwards to j").
#pragma once

#include <compare>
#include <cstddef>
#include <functional>
#include <ostream>

#include "topology/topology.hpp"

namespace maxmin::topo {

struct Link {
  NodeId from = kNoNode;
  NodeId to = kNoNode;

  friend auto operator<=>(const Link&, const Link&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Link& l) {
  return os << '(' << l.from << ',' << l.to << ')';
}

struct LinkHash {
  std::size_t operator()(const Link& l) const {
    return std::hash<std::int64_t>{}(
        (static_cast<std::int64_t>(l.from) << 32) ^
        static_cast<std::int64_t>(static_cast<std::uint32_t>(l.to)));
  }
};

}  // namespace maxmin::topo
