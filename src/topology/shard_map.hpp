// Spatial shard carving for the sharded PDES runtime (DESIGN.md §15).
//
// A shard plan partitions the nodes into K vertical strips of whole
// SpatialGrid columns — the grid's cells are csRange-sided, so every strip
// is at least one carrier-sense range wide. That width is the whole
// argument for shard independence: a node in strip i and a node in strip
// i+2 are separated by more than one full column of x-distance, hence
// strictly farther apart than csRange, hence can neither receive from nor
// sense (corrupt, energy-raise) each other. All interference is local to a
// strip or crosses exactly one boundary to the adjacent strip, which is
// what lets each strip's event stream run on its own worker exchanging
// boundary transmissions with its two neighbors only.
//
// Cut nodes — nodes with at least one cs-neighbor in another strip — are
// the only possible exporters: a transmission by a non-cut node is
// invisible outside its own strip by construction. The plan enumerates
// them (and the crossing cs-edge count) from the CSR neighbor lists so the
// runtime can track exactly the events that may need to ship.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/node_id.hpp"
#include "topology/topology.hpp"

namespace maxmin::topo {

struct ShardPlan {
  /// Actual strip count: min(requested, number of csRange columns the
  /// topology's x-extent supports). Callers must read this back — a dense
  /// area may not be wide enough for the requested shard count.
  int numShards = 1;
  std::vector<std::int32_t> shardOf;  ///< node id -> strip index
  std::vector<std::uint8_t> cut;      ///< node has a cs-neighbor off-strip
  std::vector<std::vector<NodeId>> members;  ///< per strip, ascending ids
  std::int64_t cutEdges = 0;  ///< undirected cs-edges crossing a boundary

  [[nodiscard]] bool isCut(NodeId id) const {
    return cut[static_cast<std::size_t>(id)] != 0;
  }
  [[nodiscard]] std::int32_t shard(NodeId id) const {
    return shardOf[static_cast<std::size_t>(id)];
  }
};

/// Carve the topology into at most `requestedShards` strips, balancing
/// node counts across strips under the whole-column constraint. Verifies
/// (by exhaustive cs-edge scan) that no cs-edge spans more than one strip
/// boundary before returning. `requestedShards <= 1` yields the trivial
/// single-strip plan with no cut nodes.
ShardPlan makeShardPlan(const Topology& topo, int requestedShards);

}  // namespace maxmin::topo
