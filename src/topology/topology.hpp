// Static radio topology: node positions plus the derived neighbor
// (decodable) and carrier-sense (sensable/interfering) relations.
//
// The paper assumes a static multihop network (e.g. a mesh with external
// power); all graphs here are computed once at construction. Both
// relations are materialized twice: as sorted neighbor lists (for
// iteration) and as packed AdjacencyMatrix bitsets (for O(1) membership
// and word-wise row intersections in the frame pipeline). Construction
// compares squared distances, so building an N-node topology performs no
// sqrt at all; distance()/distanceBetween() remain for reporting.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/adjacency.hpp"
#include "topology/node_id.hpp"
#include "util/check.hpp"

namespace maxmin::topo {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(Point a, Point b);

/// Squared Euclidean distance — exact for the integer-valued coordinates
/// the canned scenarios use, and what all range predicates compare
/// against (range² on the other side), keeping construction sqrt-free.
double distanceSquared(Point a, Point b);

/// Radio model: frames decode within `txRange`; energy is sensed (and
/// corrupts concurrent receptions) within `csRange`. Defaults follow the
/// paper's setup (250 m transmission range) with the conventional 2.2x
/// carrier-sense/interference radius used by ns-2-era 802.11 studies.
struct RadioRanges {
  double txRange = 250.0;
  double csRange = 550.0;
};

class Topology {
 public:
  /// Build from explicit node positions. Node ids are indices into the
  /// position vector.
  static Topology fromPositions(std::vector<Point> positions,
                                RadioRanges ranges = {});

  [[nodiscard]] int numNodes() const { return static_cast<int>(positions_.size()); }
  [[nodiscard]] Point position(NodeId id) const { return positions_.at(checkId(id)); }
  const RadioRanges& ranges() const { return ranges_; }

  [[nodiscard]] double distanceBetween(NodeId a, NodeId b) const;

  /// True when a and b can exchange decodable frames (within txRange).
  /// O(1): a bit test against the precomputed adjacency matrix.
  [[nodiscard]] bool areNeighbors(NodeId a, NodeId b) const {
    if (a == b) return false;
    static_cast<void>(checkId(a));
    static_cast<void>(checkId(b));
    return txAdj_.test(a, b);
  }

  /// True when a transmission by `a` is sensed at `b` (within csRange).
  /// Symmetric; a node does not sense itself. O(1) bit test.
  [[nodiscard]] bool inCsRange(NodeId a, NodeId b) const {
    if (a == b) return false;
    static_cast<void>(checkId(a));
    static_cast<void>(checkId(b));
    return csAdj_.test(a, b);
  }

  /// Packed decodable-neighbor relation (row a ∋ b ⟺ areNeighbors(a, b)).
  [[nodiscard]] const AdjacencyMatrix& txAdjacency() const { return txAdj_; }

  /// Packed carrier-sense relation (row a ∋ b ⟺ inCsRange(a, b)).
  [[nodiscard]] const AdjacencyMatrix& csAdjacency() const { return csAdj_; }

  /// One-hop neighbors (decodable), ascending id order.
  const std::vector<NodeId>& neighbors(NodeId id) const {
    return neighbors_.at(checkId(id));
  }

  /// Nodes exactly one or two hops away in the neighbor graph, ascending,
  /// excluding `id` itself. This is the scope over which the paper
  /// disseminates link state. Memoized at construction: GMP queries it
  /// every dissemination period, so it must not recompute (or allocate).
  [[nodiscard]] const std::vector<NodeId>& twoHopNeighborhood(NodeId id) const {
    return twoHop_.at(checkId(id));
  }

 private:
  [[nodiscard]] std::size_t checkId(NodeId id) const {
    MAXMIN_CHECK_MSG(id >= 0 && id < numNodes(), "bad node id " << id);
    return static_cast<std::size_t>(id);
  }

  std::vector<Point> positions_;
  RadioRanges ranges_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<std::vector<NodeId>> twoHop_;
  AdjacencyMatrix txAdj_;
  AdjacencyMatrix csAdj_;
};

}  // namespace maxmin::topo
