// Static radio topology: node positions plus the derived neighbor
// (decodable) and carrier-sense (sensable/interfering) relations.
//
// The paper assumes a static multihop network (e.g. a mesh with external
// power); all graphs here are computed once at construction.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace maxmin::topo {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(Point a, Point b);

/// Radio model: frames decode within `txRange`; energy is sensed (and
/// corrupts concurrent receptions) within `csRange`. Defaults follow the
/// paper's setup (250 m transmission range) with the conventional 2.2x
/// carrier-sense/interference radius used by ns-2-era 802.11 studies.
struct RadioRanges {
  double txRange = 250.0;
  double csRange = 550.0;
};

class Topology {
 public:
  /// Build from explicit node positions. Node ids are indices into the
  /// position vector.
  static Topology fromPositions(std::vector<Point> positions,
                                RadioRanges ranges = {});

  [[nodiscard]] int numNodes() const { return static_cast<int>(positions_.size()); }
  [[nodiscard]] Point position(NodeId id) const { return positions_.at(checkId(id)); }
  const RadioRanges& ranges() const { return ranges_; }

  [[nodiscard]] double distanceBetween(NodeId a, NodeId b) const;

  /// True when a and b can exchange decodable frames (within txRange).
  [[nodiscard]] bool areNeighbors(NodeId a, NodeId b) const;

  /// True when a transmission by `a` is sensed at `b` (within csRange).
  /// Symmetric; a node does not sense itself.
  [[nodiscard]] bool inCsRange(NodeId a, NodeId b) const;

  /// One-hop neighbors (decodable), ascending id order.
  const std::vector<NodeId>& neighbors(NodeId id) const {
    return neighbors_.at(checkId(id));
  }

  /// Nodes exactly one or two hops away in the neighbor graph, ascending,
  /// excluding `id` itself. This is the scope over which the paper
  /// disseminates link state.
  [[nodiscard]] std::vector<NodeId> twoHopNeighborhood(NodeId id) const;

 private:
  [[nodiscard]] std::size_t checkId(NodeId id) const {
    MAXMIN_CHECK_MSG(id >= 0 && id < numNodes(), "bad node id " << id);
    return static_cast<std::size_t>(id);
  }

  std::vector<Point> positions_;
  RadioRanges ranges_;
  std::vector<std::vector<NodeId>> neighbors_;
};

}  // namespace maxmin::topo
