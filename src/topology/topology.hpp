// Static radio topology: node positions plus the derived neighbor
// (decodable) and carrier-sense (sensable/interfering) relations.
//
// The paper assumes a static multihop network (e.g. a mesh with external
// power); all graphs here are computed once at construction, via a
// grid-bucketed SpatialGrid so construction is O(nodes + edges) — no
// O(n^2) pair scan, no sqrt (range predicates compare squared
// distances; distance()/distanceBetween() remain for reporting).
//
// The canonical representation of both relations is CSR: one flat
// NodeId array plus per-node offsets, ascending within each row. Below
// kDenseAdjacencyMaxNodes the packed AdjacencyMatrix bitsets are also
// materialized (O(1) membership tests; word-wise row intersections in
// phys::Medium's corruption scan). Above it the n^2-bit matrices would
// dominate memory (~600 MB per relation at N = 50k), so only the CSR
// arrays exist and membership is a binary search of the row — callers
// on the frame hot path branch on hasDenseAdjacency() and fall back to
// sorted-CSR merges (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topology/adjacency.hpp"
#include "topology/node_id.hpp"
#include "util/check.hpp"

namespace maxmin::topo {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(Point a, Point b);

/// Squared Euclidean distance — exact for the integer-valued coordinates
/// the canned scenarios use, and what all range predicates compare
/// against (range² on the other side), keeping construction sqrt-free.
double distanceSquared(Point a, Point b);

/// Radio model: frames decode within `txRange`; energy is sensed (and
/// corrupts concurrent receptions) within `csRange`. Defaults follow the
/// paper's setup (250 m transmission range) with the conventional 2.2x
/// carrier-sense/interference radius used by ns-2-era 802.11 studies.
struct RadioRanges {
  double txRange = 250.0;
  double csRange = 550.0;
};

/// Construction knobs. The dense-matrix threshold exists so tests can
/// force the sparse representation on small graphs; production callers
/// keep the default.
struct TopologyOptions {
  /// Materialize packed AdjacencyMatrix bitsets only at or below this
  /// node count (2048 nodes = 512 KiB per relation; the next dense mesh
  /// size we sweep, 5k, would already cost 3 MB each and 100k would
  /// cost 1.2 GB).
  int denseAdjacencyMaxNodes = 2048;
};

class Topology {
 public:
  /// Build from explicit node positions. Node ids are indices into the
  /// position vector.
  static Topology fromPositions(std::vector<Point> positions,
                                RadioRanges ranges = {},
                                TopologyOptions options = {});

  [[nodiscard]] int numNodes() const { return static_cast<int>(positions_.size()); }
  [[nodiscard]] Point position(NodeId id) const { return positions_.at(checkId(id)); }
  const RadioRanges& ranges() const { return ranges_; }

  [[nodiscard]] double distanceBetween(NodeId a, NodeId b) const;

  /// True when a and b can exchange decodable frames (within txRange).
  /// O(1) bit test when the dense matrices exist, O(log deg) binary
  /// search of the CSR row otherwise.
  [[nodiscard]] bool areNeighbors(NodeId a, NodeId b) const {
    if (a == b) return false;
    static_cast<void>(checkId(a));
    static_cast<void>(checkId(b));
    if (dense_) return txAdj_.test(a, b);
    return rowContains(neighbors(a), b);
  }

  /// True when a transmission by `a` is sensed at `b` (within csRange).
  /// Symmetric; a node does not sense itself. Same cost as areNeighbors.
  [[nodiscard]] bool inCsRange(NodeId a, NodeId b) const {
    if (a == b) return false;
    static_cast<void>(checkId(a));
    static_cast<void>(checkId(b));
    if (dense_) return csAdj_.test(a, b);
    return rowContains(csNeighbors(a), b);
  }

  /// True when the packed AdjacencyMatrix views exist (numNodes at or
  /// below TopologyOptions::denseAdjacencyMaxNodes).
  [[nodiscard]] bool hasDenseAdjacency() const { return dense_; }

  /// Packed decodable-neighbor relation (row a ∋ b ⟺ areNeighbors(a, b)).
  /// Only available when hasDenseAdjacency().
  [[nodiscard]] const AdjacencyMatrix& txAdjacency() const {
    MAXMIN_CHECK_MSG(dense_, "no dense adjacency above the size threshold");
    return txAdj_;
  }

  /// Packed carrier-sense relation (row a ∋ b ⟺ inCsRange(a, b)).
  /// Only available when hasDenseAdjacency().
  [[nodiscard]] const AdjacencyMatrix& csAdjacency() const {
    MAXMIN_CHECK_MSG(dense_, "no dense adjacency above the size threshold");
    return csAdj_;
  }

  /// One-hop neighbors (decodable), ascending id order: a view into the
  /// CSR row, valid for the topology's lifetime.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const {
    const std::size_t i = checkId(id);
    return {txList_.data() + txOff_[i], txList_.data() + txOff_[i + 1]};
  }

  /// Carrier-sense neighbors (energy heard), ascending id order; a
  /// superset of neighbors(). View into the CSR row.
  [[nodiscard]] std::span<const NodeId> csNeighbors(NodeId id) const {
    const std::size_t i = checkId(id);
    return {csList_.data() + csOff_[i], csList_.data() + csOff_[i + 1]};
  }

  /// Nodes exactly one or two hops away in the neighbor graph, ascending,
  /// excluding `id` itself. This is the scope over which the paper
  /// disseminates link state. Memoized lazily per node from the CSR rows
  /// (O(deg²) gather + sort on first touch, free afterwards): GMP queries
  /// it every dissemination period, so repeated calls must not recompute
  /// or allocate — and eager construction would cost O(Σ deg²) memory up
  /// front even for runs that never disseminate. Instances are not
  /// shared across threads (sweep jobs copy their scenario), so the lazy
  /// fill needs no synchronization.
  [[nodiscard]] const std::vector<NodeId>& twoHopNeighborhood(NodeId id) const;

  /// Total undirected decodable links.
  [[nodiscard]] std::int64_t numEdges() const {
    return static_cast<std::int64_t>(txList_.size()) / 2;
  }

  /// Bytes held by the topology's containers (positions, CSR arrays,
  /// dense matrices when present, memoized two-hop rows). The bench
  /// artifact BENCH_topology.json records this to prove construction
  /// memory stays O(nodes + edges) above the dense threshold.
  [[nodiscard]] std::size_t memoryFootprintBytes() const;

 private:
  [[nodiscard]] std::size_t checkId(NodeId id) const {
    MAXMIN_CHECK_MSG(id >= 0 && id < numNodes(), "bad node id " << id);
    return static_cast<std::size_t>(id);
  }

  [[nodiscard]] static bool rowContains(std::span<const NodeId> row, NodeId b);

  std::vector<Point> positions_;
  RadioRanges ranges_;

  // CSR rows for both relations: offsets index into the flat lists,
  // ascending ids within each row.
  std::vector<std::uint32_t> txOff_, csOff_;
  std::vector<NodeId> txList_, csList_;

  // Dense bitset views, only materialized when dense_ (small N).
  bool dense_ = false;
  AdjacencyMatrix txAdj_;
  AdjacencyMatrix csAdj_;

  // Lazy two-hop memo (see twoHopNeighborhood). Mutable: filling the
  // cache is not observable behavior.
  mutable std::vector<std::vector<NodeId>> twoHop_;
  mutable std::vector<std::uint8_t> twoHopReady_;
};

}  // namespace maxmin::topo
