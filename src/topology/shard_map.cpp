#include "topology/shard_map.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace maxmin::topo {

namespace {

ShardPlan singleStrip(const Topology& topo) {
  ShardPlan plan;
  const auto n = static_cast<std::size_t>(topo.numNodes());
  plan.numShards = 1;
  plan.shardOf.assign(n, 0);
  plan.cut.assign(n, 0);
  plan.members.resize(1);
  plan.members[0].reserve(n);
  for (int id = 0; id < topo.numNodes(); ++id) plan.members[0].push_back(id);
  return plan;
}

}  // namespace

ShardPlan makeShardPlan(const Topology& topo, int requestedShards) {
  const int n = topo.numNodes();
  if (requestedShards <= 1 || n == 0) return singleStrip(topo);

  // Column geometry: the same csRange-sided cells the SpatialGrid buckets
  // by, anchored at the leftmost node.
  const double cs = topo.ranges().csRange;
  MAXMIN_CHECK(cs > 0.0);
  double minX = std::numeric_limits<double>::infinity();
  double maxX = -std::numeric_limits<double>::infinity();
  for (int id = 0; id < n; ++id) {
    minX = std::min(minX, topo.position(id).x);
    maxX = std::max(maxX, topo.position(id).x);
  }
  const int numCols =
      std::max(1, static_cast<int>(std::ceil((maxX - minX) / cs)));
  const int k = std::min(requestedShards, numCols);
  if (k <= 1) return singleStrip(topo);

  const auto colOf = [&](int id) {
    const int c = static_cast<int>((topo.position(id).x - minX) / cs);
    return std::clamp(c, 0, numCols - 1);
  };

  // Balance node counts across strips under the whole-column constraint:
  // walk the per-column histogram and cut after each strip reaches its
  // population quantile, always leaving one column per remaining strip.
  std::vector<std::int64_t> colCount(static_cast<std::size_t>(numCols), 0);
  for (int id = 0; id < n; ++id) ++colCount[static_cast<std::size_t>(colOf(id))];
  std::vector<std::int32_t> stripOfCol(static_cast<std::size_t>(numCols), 0);
  {
    std::int64_t acc = 0;
    int strip = 0;
    for (int c = 0; c < numCols; ++c) {
      stripOfCol[static_cast<std::size_t>(c)] = strip;
      acc += colCount[static_cast<std::size_t>(c)];
      const bool quotaMet =
          acc * k >= static_cast<std::int64_t>(n) * (strip + 1);
      const bool mustCut = numCols - c - 1 <= k - strip - 1;
      if (strip < k - 1 && (quotaMet || mustCut)) ++strip;
    }
  }

  ShardPlan plan;
  plan.numShards = k;
  plan.shardOf.assign(static_cast<std::size_t>(n), 0);
  plan.cut.assign(static_cast<std::size_t>(n), 0);
  plan.members.resize(static_cast<std::size_t>(k));
  for (int id = 0; id < n; ++id) {
    const std::int32_t s = stripOfCol[static_cast<std::size_t>(colOf(id))];
    plan.shardOf[static_cast<std::size_t>(id)] = s;
    plan.members[static_cast<std::size_t>(s)].push_back(id);
  }

  // Post-carve proof obligation: strips are >= csRange wide, so no
  // cs-edge may span more than one boundary. The exhaustive scan also
  // flags cut nodes and counts crossing edges for the runtime.
  for (int id = 0; id < n; ++id) {
    const std::int32_t s = plan.shard(id);
    for (const NodeId nb : topo.csNeighbors(id)) {
      const std::int32_t t = plan.shard(nb);
      MAXMIN_CHECK_MSG(std::abs(s - t) <= 1,
                       "cs-edge " << id << "-" << nb
                                  << " spans more than one strip boundary");
      if (s != t) {
        plan.cut[static_cast<std::size_t>(id)] = 1;
        if (id < nb) ++plan.cutEdges;
      }
    }
  }
  return plan;
}

}  // namespace maxmin::topo
