// Grid-bucketed spatial index over node positions.
//
// Cells are squares whose side is the largest query radius (the
// carrier-sense range), so every node within that radius of a point lies
// in the 3x3 block of cells around it. Neighbor discovery is therefore
// O(occupants of 9 cells) per node instead of O(n), which is what takes
// Topology construction from O(n^2) pair scans to O(n + edges) and makes
// N = 100k meshes buildable in seconds (DESIGN.md §14).
//
// Buckets are stored CSR-style: one flat node array sorted by cell, plus
// per-cell offsets. Nodes within a cell appear in ascending id order
// (the fill pass walks ids ascending), so callers that sort per-node
// candidate sets reproduce exactly the neighbor ordering the brute-force
// O(n^2) construction produced.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/node_id.hpp"

namespace maxmin::topo {

struct Point;  // topology.hpp

class SpatialGrid {
 public:
  /// Index `positions` with square cells of side `cellSide` (> 0). The
  /// grid covers the positions' bounding box; ids are indices into the
  /// vector, matching Topology's node ids.
  SpatialGrid(const std::vector<Point>& positions, double cellSide);

  [[nodiscard]] int numNodes() const {
    return static_cast<int>(cellNodes_.size());
  }
  [[nodiscard]] int cellsX() const { return cellsX_; }
  [[nodiscard]] int cellsY() const { return cellsY_; }

  /// Calls fn(NodeId) for every node in the 3x3 cell block around
  /// (x, y) — a superset of all nodes within cellSide of that point.
  /// Includes the querying node itself when it lies in the block;
  /// callers filter ids and exact distances.
  template <typename Fn>
  void forEachCandidate(double x, double y, Fn&& fn) const {
    const int cx = cellCoord(x, minX_, cellsX_);
    const int cy = cellCoord(y, minY_, cellsY_);
    const int y0 = cy > 0 ? cy - 1 : 0;
    const int y1 = cy + 1 < cellsY_ ? cy + 1 : cellsY_ - 1;
    const int x0 = cx > 0 ? cx - 1 : 0;
    const int x1 = cx + 1 < cellsX_ ? cx + 1 : cellsX_ - 1;
    for (int gy = y0; gy <= y1; ++gy) {
      for (int gx = x0; gx <= x1; ++gx) {
        const std::size_t c =
            static_cast<std::size_t>(gy) * static_cast<std::size_t>(cellsX_) +
            static_cast<std::size_t>(gx);
        for (std::uint32_t i = cellOff_[c]; i < cellOff_[c + 1]; ++i) {
          fn(cellNodes_[i]);
        }
      }
    }
  }

 private:
  /// Grid coordinate along one axis, clamped so positions on the
  /// bounding box's max edge land in the last cell.
  [[nodiscard]] int cellCoord(double v, double lo, int cells) const {
    const auto c = static_cast<int>((v - lo) / cellSide_);
    if (c < 0) return 0;
    if (c >= cells) return cells - 1;
    return c;
  }

  double cellSide_ = 1.0;
  double minX_ = 0.0;
  double minY_ = 0.0;
  int cellsX_ = 0;
  int cellsY_ = 0;
  std::vector<std::uint32_t> cellOff_;  ///< cellsX*cellsY + 1 offsets
  std::vector<NodeId> cellNodes_;       ///< node ids sorted by cell
};

}  // namespace maxmin::topo
