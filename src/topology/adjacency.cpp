#include "topology/adjacency.hpp"

namespace maxmin::topo {

AdjacencyMatrix::AdjacencyMatrix(int nodes)
    : nodes_{nodes},
      words_{(static_cast<std::size_t>(nodes) + 63) / 64},
      bits_(static_cast<std::size_t>(nodes) * words_, 0) {
  MAXMIN_CHECK(nodes >= 0);
}

int AdjacencyMatrix::rowDegree(NodeId a) const {
  const std::uint64_t* r = row(a);
  int degree = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    degree += std::popcount(r[w]);
  }
  return degree;
}

}  // namespace maxmin::topo
