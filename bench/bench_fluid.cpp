// Fluid-solver microbenchmarks (DESIGN.md §16): the fixed-point solve
// the hybrid fast-forward leans on, at sweep scale. The N=5k numbers
// back the "orders-of-magnitude cheaper macro-scale sweeps" claim: one
// fluid GMP period on a 5000-node mesh costs milliseconds where the
// packet engine costs minutes.
//
// The solver core is allocation-free after the first evaluate() (CSR
// incidence + reused workspace); counters report iterations so a
// regression in convergence shows up as surely as one in wall time.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "baselines/two_phase.hpp"
#include "fluid/fluid_gmp.hpp"
#include "fluid/fluid_network.hpp"
#include "mac/params.hpp"
#include "scenarios/scenarios.hpp"

namespace {

using namespace maxmin;

double nominalCapacity() {
  return baselines::nominalLinkCapacityPps(mac::MacParams{},
                                           DataSize::bytes(1000));
}

scenarios::Scenario sweepMesh(int nodes) {
  // Constant-density placement (average tx degree ~8) with one flow per
  // ~10 nodes: the macro-scale sweep shape, not the dense stress preset.
  return scenarios::randomMesh(11, nodes,
                               scenarios::meshSideForDegree(nodes, 8.0),
                               nodes / 10);
}

/// One steady-state evaluate() under fresh rate limits: the per-period
/// cost inside fast-forward and the background re-linearization loop.
void BM_FluidEvaluate(benchmark::State& state) {
  const auto nodes = static_cast<int>(state.range(0));
  const auto sc = sweepMesh(nodes);
  fluid::FluidNetwork net{sc.topology, sc.flows, nominalCapacity()};
  // Warm the workspace; later calls are allocation-free.
  benchmark::DoNotOptimize(net.evaluate().rates.size());
  std::int64_t iterations = 0;
  for (auto _ : state) {
    const auto fs = net.evaluate();
    iterations += net.lastSolveStats().iterations;
    benchmark::DoNotOptimize(fs.rates.size());
  }
  state.counters["scale_iters"] = benchmark::Counter(
      static_cast<double>(iterations), benchmark::Counter::kAvgIterations);
  state.counters["flows"] = static_cast<double>(sc.flows.size());
  state.counters["cliques"] =
      static_cast<double>(net.contention().cliques.size());
}
BENCHMARK(BM_FluidEvaluate)->Arg(500)->Arg(5000)->Unit(benchmark::kMillisecond);

/// The full fast-forward primitive: iterate fluid GMP periods until the
/// EWMA rate residual falls below the hybrid default tolerance.
void BM_FluidFixedPoint(benchmark::State& state) {
  const auto nodes = static_cast<int>(state.range(0));
  const auto sc = sweepMesh(nodes);
  const double cap = nominalCapacity();
  std::int64_t periods = 0;
  bool converged = true;
  for (auto _ : state) {
    state.PauseTiming();
    fluid::FluidNetwork net{sc.topology, sc.flows, cap};
    fluid::FluidGmpHarness harness{net, gmp::GmpParams{}};
    state.ResumeTiming();
    const auto fp = harness.runToFixedPoint(0.02, 400);
    periods += fp.periods;
    converged = converged && fp.converged;
    benchmark::DoNotOptimize(fp.residual);
  }
  state.counters["periods"] = benchmark::Counter(
      static_cast<double>(periods), benchmark::Counter::kAvgIterations);
  state.counters["converged"] = converged ? 1.0 : 0.0;
}
BENCHMARK(BM_FluidFixedPoint)
    ->Arg(500)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
