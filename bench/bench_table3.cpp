// Reproduces paper Table 3: 802.11 vs 2PP vs GMP on the Fig. 3 topology
// (4-node chain, three flows to a common sink).
//
// Expected shape: GMP near-equal rates with I_eq ~ 1 and the highest U;
// 802.11 unfair (the 3-hop flow <0,3> lowest, hidden-terminal losses)
// with the lowest U and buffer drops; 2PP favors the short flow. See
// EXPERIMENTS.md for where the magnitudes deviate from the paper's.
#include <benchmark/benchmark.h>

#include "baselines/configs.hpp"
#include "bench/bench_util.hpp"
#include "net/network.hpp"

namespace {

using namespace maxmin;

void reproduceTable3() {
  const auto sc = scenarios::fig3();

  struct Column {
    analysis::Protocol protocol;
    std::vector<double> paperRates;
    double paperU, paperImm, paperIeq;
  };
  const std::vector<Column> columns{
      {analysis::Protocol::kDcf80211, {80.63, 220.07, 174.09}, 856.11, 0.366,
       0.882},
      {analysis::Protocol::kTwoPhase, {131.86, 188.76, 240.85}, 1013.96,
       0.547, 0.946},
      {analysis::Protocol::kGmp, {164.75, 176.04, 179.21}, 1025.54, 0.919,
       0.999},
  };

  std::vector<analysis::RunResult> results;
  for (const Column& c : columns) {
    results.push_back(
        analysis::runScenario(sc, bench::paperRunConfig(c.protocol)));
  }

  std::cout << "== Table 3: three flows to a common sink (Fig. 3) ==\n";
  Table t({"flow", "802.11 paper", "802.11", "2PP paper", "2PP",
           "GMP paper", "GMP"});
  for (std::size_t i = 0; i < sc.flows.size(); ++i) {
    t.addRow({sc.flows[i].name,
              Table::num(columns[0].paperRates[i]),
              Table::num(results[0].flows[i].ratePps),
              Table::num(columns[1].paperRates[i]),
              Table::num(results[1].flows[i].ratePps),
              Table::num(columns[2].paperRates[i]),
              Table::num(results[2].flows[i].ratePps)});
  }
  auto metricRow = [&](const std::string& name, auto paperOf, auto measuredOf,
                       int digits) {
    std::vector<std::string> row{name};
    for (std::size_t p = 0; p < columns.size(); ++p) {
      row.push_back(Table::num(paperOf(columns[p]), digits));
      row.push_back(Table::num(measuredOf(results[p]), digits));
    }
    t.addRow(row);
  };
  metricRow("U", [](const Column& c) { return c.paperU; },
            [](const analysis::RunResult& r) {
              return r.summary.effectiveThroughputPps;
            },
            2);
  metricRow("I_mm", [](const Column& c) { return c.paperImm; },
            [](const analysis::RunResult& r) { return r.summary.imm; }, 3);
  metricRow("I_eq", [](const Column& c) { return c.paperIeq; },
            [](const analysis::RunResult& r) { return r.summary.ieq; }, 3);
  t.print(std::cout);

  std::cout << "queue drops: 802.11=" << results[0].queueDrops
            << " 2PP=" << results[1].queueDrops
            << " GMP=" << results[2].queueDrops << "\n\n";
}

void BM_Fig3Dcf80211Second(benchmark::State& state) {
  const auto sc = scenarios::fig3();
  net::NetworkConfig cfg = baselines::config80211({});
  cfg.seed = 3;
  net::Network net{sc.topology, cfg, sc.flows};
  net.run(Duration::seconds(5.0));
  for (auto _ : state) {
    net.run(Duration::seconds(1.0));
  }
  state.SetLabel("1s simulated per iteration");
}
BENCHMARK(BM_Fig3Dcf80211Second)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduceTable3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
