// Reproduces the Figure 1 argument (paper §5.1): per-destination
// queueing isolates traffic to different destinations.
//
// Two experiments:
//  (a) the relay-sharing layout of Fig. 1 (f1: x->i->j->z->t across a
//      backpressured 4-hop path; f2: y->i->j->v), comparing one shared
//      queue per node against per-destination queues;
//  (b) the source-queue variant that realizes Fig. 1(c)'s "f2 sends at
//      its desirable rate" exactly: two flows from one source, one
//      congested 3-hop path, one free 1-hop path.
// EXPERIMENTS.md discusses why (a)'s quantitative contrast is bounded by
// the 2.2x carrier-sense footprint.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/configs.hpp"
#include "bench/bench_util.hpp"
#include "net/network.hpp"

namespace {

using namespace maxmin;

std::map<net::FlowId, double> runQueueing(const topo::Topology& topo,
                                          const std::vector<net::FlowSpec>& flows,
                                          bool perDestination,
                                          std::int64_t* drops) {
  net::NetworkConfig cfg;
  cfg.seed = 5;
  if (perDestination) {
    cfg = baselines::configGmp({});
    cfg.seed = 5;
  } else {
    cfg.discipline = net::QueueDiscipline::kSharedFifo;
    cfg.congestionAvoidance = true;
    cfg.sharedBufferCapacity = 10;
  }
  net::Network net{topo, cfg, flows};
  net.run(Duration::seconds(60.0));
  const auto s0 = net.snapshotDeliveries();
  net.run(Duration::seconds(120.0));
  if (drops != nullptr) *drops = net.totalQueueDrops();
  return net::Network::ratesBetween(s0, net.snapshotDeliveries());
}

void experimentRelaySharing() {
  const auto sc = scenarios::fig1();
  std::cout << "== Figure 1 (a): relay-sharing layout, shared vs "
               "per-destination queues ==\n";
  Table t({"queueing", "r(f1)", "r(f2)", "queue drops"});
  for (bool perDest : {false, true}) {
    std::int64_t drops = 0;
    const auto rates = runQueueing(sc.topology, sc.flows, perDest, &drops);
    t.addRow({perDest ? "per-destination (Fig. 1c)" : "shared (Fig. 1b)",
              Table::num(rates.at(0)), Table::num(rates.at(1)),
              std::to_string(drops)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void experimentSourceIsolation() {
  std::vector<topo::Point> pts{{0, 0}, {200, 0}, {400, 0}, {600, 0}};
  auto topo = topo::Topology::fromPositions(pts);
  std::vector<net::FlowSpec> flows(2);
  flows[0].id = 0;
  flows[0].src = 0;
  flows[0].dst = 3;
  flows[0].desiredRate = PacketRate::perSecond(800);
  flows[0].name = "f1 (3 hops, congested)";
  flows[1].id = 1;
  flows[1].src = 0;
  flows[1].dst = 1;
  flows[1].desiredRate = PacketRate::perSecond(100);
  flows[1].name = "f2 (1 hop, desirable 100)";

  std::cout << "== Figure 1 (b): source-queue isolation "
               "(f2's desirable rate is 100 pkt/s) ==\n";
  Table t({"queueing", "r(f1)", "r(f2)"});
  for (bool perDest : {false, true}) {
    const auto rates = runQueueing(topo, flows, perDest, nullptr);
    t.addRow({perDest ? "per-destination (Fig. 1c)" : "shared (Fig. 1b)",
              Table::num(rates.at(0)), Table::num(rates.at(1))});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void BM_Fig1PerDestinationSecond(benchmark::State& state) {
  const auto sc = scenarios::fig1();
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 3;
  net::Network net{sc.topology, cfg, sc.flows};
  net.run(Duration::seconds(5.0));
  for (auto _ : state) {
    net.run(Duration::seconds(1.0));
  }
}
BENCHMARK(BM_Fig1PerDestinationSecond)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  experimentRelaySharing();
  experimentSourceIsolation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
