// Self-healing control plane under randomized fault schedules (no
// counterpart figure in the paper; exercises the §6.2 dissemination
// hardening from DESIGN.md §13).
//
// The preamble replays a handful of seeded chaos schedules on the Fig. 3
// chain and prints the oracle outcomes, then one canary row on a 12-node
// mesh with dominating-set repair disabled — the 2-hop coverage oracle
// must catch the frozen backbone. The timed section measures the pieces
// the harness leans on per fault event: schedule generation, the
// incremental per-neighborhood relay repair, the reachability summary,
// and a full greedy dominating-set build.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "analysis/chaos_harness.hpp"
#include "baselines/configs.hpp"
#include "bench/bench_util.hpp"
#include "gmp/dissemination.hpp"
#include "gmp/partition.hpp"
#include "net/network.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/chaos.hpp"
#include "topology/dominating_set.hpp"
#include "util/rng.hpp"

namespace {

using namespace maxmin;

sim::ChaosConfig meshShape(const topo::Topology& topo) {
  sim::ChaosConfig shape;
  shape.numNodes = topo.numNodes();
  for (topo::NodeId n = 0; n < topo.numNodes(); ++n) {
    for (const topo::NodeId nbr : topo.neighbors(n)) {
      if (n < nbr) shape.links.emplace_back(n, nbr);
    }
    for (const topo::NodeId r : topo::computeDominatingSet(topo, n)) {
      if (std::find(shape.relayNodes.begin(), shape.relayNodes.end(), r) ==
          shape.relayNodes.end()) {
        shape.relayNodes.push_back(r);
      }
    }
  }
  return shape;
}

void reproduceChaos() {
  std::cout << "== chaos-schedule fuzzing, self-healing oracles ==\n";
  Table t({"scenario", "seed", "verdict", "periods", "tail I_eq",
           "relay repairs", "retransmits", "coverage violations"});

  const auto fig3 = scenarios::fig3();
  analysis::ChaosParams params;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto o = analysis::runChaosSchedule(fig3, seed, params);
    t.addRow({"fig3", std::to_string(o.seed), o.ok ? "ok" : "FAIL",
              std::to_string(o.periodsRun), Table::num(o.tailIeq, 4),
              std::to_string(o.relayRepairs), std::to_string(o.retransmits),
              std::to_string(o.coverageViolations)});
  }

  // The canary: freeze the dominating sets (pre-repair behaviour) and the
  // coverage oracle must flag the hole a crashed relay leaves behind.
  const auto mesh = scenarios::randomMesh(1, 12, 700.0, 5);
  analysis::ChaosParams canary;
  canary.repairEnabled = false;
  canary.shape.crashStorms = 2;
  canary.horizonSeconds = 60.0;
  canary.tailIeq = 0.0;  // coverage is the oracle under test
  analysis::ChaosOutcome o;
  for (std::uint64_t seed = 1; seed <= 8 && o.coverageViolations == 0;
       ++seed) {
    o = analysis::runChaosSchedule(mesh, seed, canary);
  }
  t.addRow({"mesh canary", std::to_string(o.seed),
            o.coverageViolations > 0 ? "caught" : "MISSED",
            std::to_string(o.periodsRun), Table::num(o.tailIeq, 4),
            std::to_string(o.relayRepairs), std::to_string(o.retransmits),
            std::to_string(o.coverageViolations)});
  t.print(std::cout);
  std::cout << "\nEach schedule is one seed: crash storms aimed at the relay "
               "backbone, flapping links and a node isolation, all healed "
               "early enough for the tail re-convergence bar. The canary row "
               "must read 'caught' — with repair disabled the crashed relay "
               "leaves 2-hop dissemination coverage incomplete.\n\n";
}

void BM_ChaosScheduleGeneration(benchmark::State& state) {
  const auto sc = scenarios::randomMesh(1, 12, 700.0, 5);
  const auto shape = meshShape(sc.topology);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng = Rng{seed++}.stream("chaos");
    benchmark::DoNotOptimize(sim::generateChaosSchedule(shape, rng));
  }
}
BENCHMARK(BM_ChaosScheduleGeneration);

void BM_IncrementalRelayRepair(benchmark::State& state) {
  // The per-fault-event cost: a link transition triggers a greedy re-cover
  // of the two endpoints' 2-hop neighborhoods only, not the whole graph.
  const auto sc = scenarios::randomMesh(1, 12, 700.0, 5);
  net::NetworkConfig cfg = baselines::configGmp({});
  net::Network net{sc.topology, cfg, sc.flows};
  net.enableFaults({});
  gmp::LinkStateDissemination diss{net};
  for (auto _ : state) {
    diss.onLinkChanged(0, 1, false);
  }
}
BENCHMARK(BM_IncrementalRelayRepair);

void BM_ReachabilitySummary(benchmark::State& state) {
  // Period-boundary cost of the partition-aware GMP pass.
  const auto sc = scenarios::randomMesh(1, 24, 900.0, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmp::computeReachability(sc.topology, nullptr));
  }
}
BENCHMARK(BM_ReachabilitySummary);

void BM_FullDominatingSetBuild(benchmark::State& state) {
  // What the incremental repair avoids: rebuilding every node's set.
  const auto sc = scenarios::randomMesh(1, 24, 900.0, 8);
  for (auto _ : state) {
    for (topo::NodeId n = 0; n < sc.topology.numNodes(); ++n) {
      benchmark::DoNotOptimize(topo::computeDominatingSet(sc.topology, n));
    }
  }
}
BENCHMARK(BM_FullDominatingSetBuild);

}  // namespace

int main(int argc, char** argv) {
  reproduceChaos();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
