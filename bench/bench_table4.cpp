// Reproduces paper Table 4: 802.11 vs 2PP vs GMP on the Fig. 4 topology
// (four parallel 3-node chains; odd flows 2 hops, even flows 1 hop).
//
// Expected shape: under 802.11 the side chains (f1/f2, f7/f8) get about
// twice the middle chains' rates; under 2PP the remaining bandwidth is
// heavily biased toward the side one-hop flows f2 and f8 and fairness
// collapses below 802.11's; under GMP all eight flows are approximately
// equal regardless of location and length.
#include <benchmark/benchmark.h>

#include "baselines/configs.hpp"
#include "bench/bench_util.hpp"
#include "net/network.hpp"

namespace {

using namespace maxmin;

void reproduceTable4() {
  const auto sc = scenarios::fig4();

  struct Column {
    analysis::Protocol protocol;
    std::vector<double> paperRates;
    double paperU, paperImm, paperIeq;
  };
  const std::vector<Column> columns{
      {analysis::Protocol::kDcf80211,
       {221.81, 221.81, 107.29, 107.28, 106.36, 106.36, 223.39, 223.39},
       1976.54, 0.476, 0.890},
      {analysis::Protocol::kTwoPhase,
       {43.31, 347.81, 43.33, 86.67, 43.39, 86.70, 43.36, 346.96}, 1214.93,
       0.125, 0.514},
      {analysis::Protocol::kGmp,
       {145.46, 145.94, 134.26, 132.38, 135.44, 133.04, 141.69, 149.07},
       1674.13, 0.888, 0.998},
  };

  std::vector<analysis::RunResult> results;
  for (const Column& c : columns) {
    results.push_back(
        analysis::runScenario(sc, bench::paperRunConfig(c.protocol)));
  }

  std::cout << "== Table 4: four parallel chains, eight flows (Fig. 4) ==\n";
  Table t({"flow", "802.11 paper", "802.11", "2PP paper", "2PP",
           "GMP paper", "GMP"});
  for (std::size_t i = 0; i < sc.flows.size(); ++i) {
    t.addRow({sc.flows[i].name,
              Table::num(columns[0].paperRates[i]),
              Table::num(results[0].flows[i].ratePps),
              Table::num(columns[1].paperRates[i]),
              Table::num(results[1].flows[i].ratePps),
              Table::num(columns[2].paperRates[i]),
              Table::num(results[2].flows[i].ratePps)});
  }
  auto metricRow = [&](const std::string& name, auto paperOf, auto measuredOf,
                       int digits) {
    std::vector<std::string> row{name};
    for (std::size_t p = 0; p < columns.size(); ++p) {
      row.push_back(Table::num(paperOf(columns[p]), digits));
      row.push_back(Table::num(measuredOf(results[p]), digits));
    }
    t.addRow(row);
  };
  metricRow("U", [](const Column& c) { return c.paperU; },
            [](const analysis::RunResult& r) {
              return r.summary.effectiveThroughputPps;
            },
            2);
  metricRow("I_mm", [](const Column& c) { return c.paperImm; },
            [](const analysis::RunResult& r) { return r.summary.imm; }, 3);
  metricRow("I_eq", [](const Column& c) { return c.paperIeq; },
            [](const analysis::RunResult& r) { return r.summary.ieq; }, 3);
  t.print(std::cout);

  std::cout << "queue drops: 802.11=" << results[0].queueDrops
            << " 2PP=" << results[1].queueDrops
            << " GMP=" << results[2].queueDrops << "\n\n";
}

void BM_Fig4GmpSecond(benchmark::State& state) {
  const auto sc = scenarios::fig4();
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 3;
  net::Network net{sc.topology, cfg, sc.flows};
  net.run(Duration::seconds(5.0));
  for (auto _ : state) {
    net.run(Duration::seconds(1.0));
  }
  state.SetLabel("1s simulated, 12 nodes, 8 flows");
}
BENCHMARK(BM_Fig4GmpSecond)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduceTable4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
