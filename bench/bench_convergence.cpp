// Extension experiment (no counterpart figure in the paper): GMP
// convergence dynamics. For each evaluation scenario, how many 4 s
// periods until every flow settles within ±15 % of its final rate, how
// large the steady-state wobble is, and the end-to-end latency the
// backpressure pipeline imposes.
#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/convergence.hpp"
#include "baselines/configs.hpp"
#include "bench/bench_util.hpp"
#include "gmp/controller.hpp"
#include "net/network.hpp"

namespace {

using namespace maxmin;

void convergenceRow(Table& t, const scenarios::Scenario& sc) {
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 7;
  net::Network net{sc.topology, cfg, sc.flows};
  gmp::Controller controller{net, gmp::GmpParams{}};
  controller.start();
  net.run(Duration::seconds(400.0));

  const auto report =
      analysis::analyzeConvergence(controller.rateHistory(), 0.15, 15);
  double worstLatencyMs = 0.0;
  double worstMaxLatencyMs = 0.0;
  for (const auto& f : sc.flows) {
    const auto& lat = net.latencyStats(f.id);
    worstLatencyMs = std::max(worstLatencyMs, lat.mean() * 1e3);
    worstMaxLatencyMs = std::max(worstMaxLatencyMs, lat.max() * 1e3);
  }
  t.addRow({sc.name,
            report.convergedAtPeriod < 0
                ? "never"
                : std::to_string(report.convergedAtPeriod) + " (" +
                      Table::num(report.convergedAtPeriod * 4.0, 0) + " s)",
            Table::num(report.tailOscillation * 100.0, 1) + "%",
            Table::num(worstLatencyMs, 1),
            Table::num(worstMaxLatencyMs, 1)});
}

void reproduceConvergence() {
  std::cout << "== GMP convergence dynamics (400 s sessions, 4 s periods, "
               "settling band +/-15%) ==\n";
  Table t({"scenario", "settled at period", "tail wobble",
           "worst mean latency (ms)", "worst max latency (ms)"});
  convergenceRow(t, scenarios::fig3());
  convergenceRow(t, scenarios::fig2());
  convergenceRow(t, scenarios::fig2({1, 2, 1, 3}));
  convergenceRow(t, scenarios::fig4());
  t.print(std::cout);
  std::cout
      << "\nMean latency stays near 150 ms under saturation: per-destination "
         "queues hold at most 10 packets per hop, so the backpressure "
         "pipeline bounds steady-state queueing delay. The max-latency "
         "column captures the convergence transient: packets admitted while "
         "their link was still MAC-starved (e.g. Fig. 2's (1,2) at a few "
         "pkt/s early on) can sit in a 10-deep queue for tens of seconds "
         "before GMP rebalances the clique.\n\n";
}

void BM_ConvergenceAnalysis(benchmark::State& state) {
  analysis::RateHistory history;
  for (int p = 0; p < 100; ++p) {
    std::map<net::FlowId, double> rates;
    for (net::FlowId f = 0; f < 8; ++f) {
      rates[f] = 100.0 + (p < 50 ? 50.0 - p : 0.0);
    }
    history.push_back(rates);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyzeConvergence(history, 0.15, 10));
  }
}
BENCHMARK(BM_ConvergenceAnalysis);

}  // namespace

int main(int argc, char** argv) {
  reproduceConvergence();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
