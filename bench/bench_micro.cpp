// Microbenchmarks for the substrate components: event queue, medium,
// clique enumeration, dominating sets, routing, fluid evaluation, and
// end-to-end DES throughput.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/maxmin_solver.hpp"
#include "baselines/configs.hpp"
#include "fluid/fluid_network.hpp"
#include "net/network.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/simulator.hpp"
#include "topology/cliques.hpp"
#include "topology/conflict_graph.hpp"
#include "topology/dominating_set.hpp"
#include "topology/routing.hpp"
#include "util/rng.hpp"

namespace {

using namespace maxmin;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    Rng rng{42};
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sim.post(Duration::micros(rng.uniformInt(0, 1000000)),
                   [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

// Steady-state churn: a fixed population of pending events where every
// firing schedules a successor — the actual workload shape of a running
// simulation (timers re-arming, frames chaining), as opposed to the
// bulk-load-then-drain shape above.
void BM_EventQueueSteadyState(benchmark::State& state) {
  const auto population = static_cast<int>(state.range(0));
  constexpr int kFiresPerIter = 20000;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    Rng rng{7};
    std::int64_t fired = 0;
    std::function<void()> chain = [&] {
      ++fired;
      if (fired + static_cast<std::int64_t>(sim.pendingEvents()) <
          kFiresPerIter) {
        sim.post(Duration::micros(rng.uniformInt(1, 10000)), [&] {
          chain();
        });
      }
    };
    for (int i = 0; i < population; ++i) {
      sim.post(Duration::micros(rng.uniformInt(1, 10000)),
                   [&] { chain(); });
    }
    state.ResumeTiming();
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kFiresPerIter);
}
BENCHMARK(BM_EventQueueSteadyState)->Arg(100)->Arg(10000);

// Same-instant bursts: many events at identical timestamps (period
// boundaries in GMP fire every node's window close at once); stresses
// FIFO tie-breaking and the sorted-run insert path.
void BM_EventQueueSameInstantBursts(benchmark::State& state) {
  constexpr int kBursts = 100;
  constexpr int kPerBurst = 100;
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int b = 0; b < kBursts; ++b) {
      for (int i = 0; i < kPerBurst; ++i) {
        sim.post(Duration::millis(b), [&fired] { ++fired; });
      }
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kBursts * kPerBurst);
}
BENCHMARK(BM_EventQueueSameInstantBursts);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(sim.schedule(Duration::micros(i + 1), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventCancellation);

scenarios::Scenario meshScenario(int nodes) {
  return scenarios::randomMesh(99, nodes, 250.0 * nodes / 4, 4);
}

void BM_CliqueEnumeration(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto sc = meshScenario(n);
  std::vector<topo::Link> links;
  for (topo::NodeId a = 0; a < sc.topology.numNodes(); ++a) {
    for (topo::NodeId b : sc.topology.neighbors(a)) {
      if (a < b) links.push_back(topo::Link{a, b});
    }
  }
  const topo::ConflictGraph graph{sc.topology, links};
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::enumerateMaximalCliques(graph));
  }
  state.SetLabel(std::to_string(links.size()) + " links");
}
BENCHMARK(BM_CliqueEnumeration)->Arg(12)->Arg(20);

void BM_DominatingSets(benchmark::State& state) {
  const auto sc = meshScenario(20);
  for (auto _ : state) {
    for (topo::NodeId n = 0; n < sc.topology.numNodes(); ++n) {
      benchmark::DoNotOptimize(topo::computeDominatingSet(sc.topology, n));
    }
  }
}
BENCHMARK(BM_DominatingSets);

void BM_ShortestPathRouting(benchmark::State& state) {
  const auto sc = meshScenario(20);
  for (auto _ : state) {
    for (topo::NodeId n = 0; n < sc.topology.numNodes(); ++n) {
      benchmark::DoNotOptimize(
          topo::RoutingTree::shortestPaths(sc.topology, n));
    }
  }
}
BENCHMARK(BM_ShortestPathRouting);

void BM_FluidEvaluate(benchmark::State& state) {
  const auto sc = scenarios::fig4();
  fluid::FluidNetwork net{sc.topology, sc.flows, 580.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.evaluate());
  }
}
BENCHMARK(BM_FluidEvaluate);

void BM_MaxminSolverMesh(benchmark::State& state) {
  const auto sc = meshScenario(16);
  const auto model = analysis::buildCliqueModel(sc.topology, sc.flows, 580.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::solveWeightedMaxmin(model));
  }
}
BENCHMARK(BM_MaxminSolverMesh);

/// End-to-end DES cost: simulated-seconds per wall-second on the
/// saturated Fig. 4 network under the GMP configuration.
void BM_DesSimulatedSecondFig4(benchmark::State& state) {
  const auto sc = scenarios::fig4();
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 3;
  net::Network net{sc.topology, cfg, sc.flows};
  net.run(Duration::seconds(2.0));
  std::uint64_t eventsBefore = net.simulator().executedEvents();
  for (auto _ : state) {
    net.run(Duration::seconds(1.0));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(net.simulator().executedEvents() - eventsBefore));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_DesSimulatedSecondFig4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
