// Reproduces paper Table 1: GMP on the Fig. 2 topology, all weights 1.
//
// Expected shape (paper: f1=563.96, f2=196.96, f3=217.57, f4=221.41):
// f1 well above the clique-1 flows, which are near-equal with f2
// slightly lowest. Absolute rates differ — our 802.11b substrate has
// more per-packet overhead than the authors' simulator (see
// EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "baselines/configs.hpp"
#include "bench/bench_util.hpp"
#include "gmp/controller.hpp"
#include "net/network.hpp"

namespace {

using namespace maxmin;

void reproduceTable1() {
  const auto sc = scenarios::fig2();
  const auto result = analysis::runScenario(
      sc, bench::paperRunConfig(analysis::Protocol::kGmp));
  bench::printComparison("Table 1: GMP on Fig. 2, equal weights", sc,
                         {563.96, 196.96, 217.57, 221.41}, result, {});
}

/// Wall-clock cost of one 4 s GMP measurement/adjustment period on the
/// Fig. 2 network (steady state).
void BM_Fig2GmpPeriod(benchmark::State& state) {
  const auto sc = scenarios::fig2();
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 3;
  net::Network net{sc.topology, cfg, sc.flows};
  gmp::Controller controller{net, gmp::GmpParams{}};
  controller.start();
  net.run(Duration::seconds(20.0));  // past startup transients
  for (auto _ : state) {
    net.run(Duration::seconds(4.0));
  }
  state.SetLabel("4s simulated per iteration");
}
BENCHMARK(BM_Fig2GmpPeriod)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduceTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
