// Shared plumbing for the table-reproduction benches: run a scenario
// under a protocol with the paper's session parameters and print
// paper-vs-measured tables.
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "scenarios/scenarios.hpp"
#include "util/table.hpp"

namespace maxmin::bench {

/// The paper's session setup (§7): 400 s sessions, 4 s periods; we
/// measure over the second half, after GMP has converged.
inline analysis::RunConfig paperRunConfig(analysis::Protocol protocol,
                                          std::uint64_t seed = 7) {
  analysis::RunConfig cfg;
  cfg.protocol = protocol;
  cfg.duration = Duration::seconds(400.0);
  cfg.warmup = Duration::seconds(200.0);
  cfg.seed = seed;
  return cfg;
}

/// Print one reproduction table: per-flow rows "paper vs measured", then
/// the summary metrics.
inline void printComparison(const std::string& title,
                            const scenarios::Scenario& scenario,
                            const std::vector<double>& paperRates,
                            const analysis::RunResult& result,
                            const std::map<std::string, double>& paperMetrics) {
  std::cout << "== " << title << " ==\n";
  Table t({"flow", "weight", "hops", "paper rate", "measured rate"});
  for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
    t.addRow({scenario.flows[i].name, Table::num(scenario.flows[i].weight, 0),
              std::to_string(result.flows[i].hops),
              i < paperRates.size() ? Table::num(paperRates[i]) : "-",
              Table::num(result.flows[i].ratePps)});
  }
  t.print(std::cout);

  Table m({"metric", "paper", "measured"});
  auto metric = [&](const std::string& name, double measured, int digits) {
    const auto it = paperMetrics.find(name);
    m.addRow({name, it != paperMetrics.end() ? Table::num(it->second, digits)
                                             : "-",
              Table::num(measured, digits)});
  };
  metric("U", result.summary.effectiveThroughputPps, 2);
  metric("I_mm", result.summary.imm, 3);
  metric("I_eq", result.summary.ieq, 3);
  m.print(std::cout);
  std::cout << '\n';
}

}  // namespace maxmin::bench
