// Reproduces paper Table 2: weighted maxmin on the Fig. 2 topology,
// weights w(f1..f4) = 1, 2, 1, 3.
//
// Expected shape (paper: 527.58, 225.40, 121.90, 377.20): the clique-1
// flows f2, f3, f4 receive rates approximately proportional to their
// weights 2:1:3, while f1 — despite weight 1 — opportunistically takes
// the clique-0 bandwidth f2 cannot use.
#include <benchmark/benchmark.h>

#include "analysis/maxmin_solver.hpp"
#include "baselines/two_phase.hpp"
#include "bench/bench_util.hpp"

namespace {

using namespace maxmin;

void reproduceTable2() {
  const auto sc = scenarios::fig2({1, 2, 1, 3});
  const auto result = analysis::runScenario(
      sc, bench::paperRunConfig(analysis::Protocol::kGmp));
  bench::printComparison("Table 2: weighted GMP on Fig. 2 (w = 1,2,1,3)", sc,
                         {527.58, 225.40, 121.90, 377.20}, result, {});

  // Normalized rates: the weighted-fairness view.
  Table t({"flow", "weight", "measured mu = r/w"});
  for (const auto& f : result.flows) {
    t.addRow({f.name, Table::num(f.weight, 0),
              Table::num(f.ratePps / f.weight)});
  }
  t.print(std::cout);

  // Centralized reference on the idealized clique model.
  const auto model = analysis::buildCliqueModel(
      sc.topology, sc.flows,
      baselines::nominalLinkCapacityPps(mac::MacParams{},
                                        DataSize::bytes(1024)));
  const auto reference = analysis::solveWeightedMaxmin(model);
  Table r({"flow", "centralized maxmin reference"});
  for (const auto& f : sc.flows) {
    r.addRow({f.name, Table::num(reference.at(f.id))});
  }
  r.print(std::cout);
  std::cout << '\n';
}

void BM_WeightedMaxminSolverFig2(benchmark::State& state) {
  const auto sc = scenarios::fig2({1, 2, 1, 3});
  const auto model = analysis::buildCliqueModel(sc.topology, sc.flows, 580.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::solveWeightedMaxmin(model));
  }
}
BENCHMARK(BM_WeightedMaxminSolverFig2);

}  // namespace

int main(int argc, char** argv) {
  reproduceTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
