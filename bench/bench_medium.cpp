// Microbenchmarks for the PHY frame pipeline (phys::Medium): isolated
// start/finish cost on constant-density random meshes, worst-case dense
// same-instant bursts, and a dense macro scenario under the full DES.
// tools/emit_bench_kernel.sh --medium runs these and emits
// BENCH_medium.json, the frame-pipeline performance trajectory artifact.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "baselines/configs.hpp"
#include "net/network.hpp"
#include "phys/medium.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/simulator.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace {

using namespace maxmin;

/// Counts deliveries/corruptions; ignores carrier-sense transitions. The
/// counters keep the compiler from discarding the reception work.
class CountingRadio final : public phys::RadioListener {
 public:
  void onChannelBusy() override {}
  void onChannelIdle() override {}
  void onFrameReceived(const phys::Frame&) override { ++received; }
  void onFrameCorrupted(const phys::Frame&) override { ++corrupted; }
  std::int64_t received = 0;
  std::int64_t corrupted = 0;
};

phys::Frame dataFrame(topo::NodeId from, std::int64_t micros) {
  phys::Frame f;
  f.kind = phys::FrameKind::kData;
  f.transmitter = from;
  f.addressee = topo::kNoNode;  // Medium delivers to every node in range
  f.duration = Duration::micros(micros);
  return f;
}

/// A Medium with one counting radio per node and no MAC above it.
struct Harness {
  explicit Harness(topo::Topology t)
      : topo{std::move(t)},
        medium{sim, topo},
        radios(static_cast<std::size_t>(topo.numNodes())) {
    for (topo::NodeId n = 0; n < topo.numNodes(); ++n) {
      medium.attachRadio(n, &radios[static_cast<std::size_t>(n)]);
    }
  }
  sim::Simulator sim;
  topo::Topology topo;
  phys::Medium medium;
  std::vector<CountingRadio> radios;
};

/// Staggered start/finish churn: every node transmits one 100 us frame at
/// a random offset within a 400 us window, repeated for `kRounds` rounds
/// per iteration — the workload shape of a loaded but not pathological
/// mesh (partial overlap, mixed clean/corrupted receptions).
void BM_MediumStartFinish(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto sc = scenarios::randomMesh(
      99, n, scenarios::meshSideForDegree(n, 5.0), 2);
  Harness h{sc.topology};
  Rng rng{42};
  constexpr int kRounds = 10;
  std::int64_t frames = 0;
  for (auto _ : state) {
    for (int round = 0; round < kRounds; ++round) {
      for (topo::NodeId s = 0; s < h.topo.numNodes(); ++s) {
        h.sim.post(Duration::micros(rng.uniformInt(0, 400)),
                   [&h, s] { h.medium.startTransmission(dataFrame(s, 100)); });
      }
      h.sim.run();
      frames += h.topo.numNodes();
    }
  }
  state.SetItemsProcessed(frames);
  state.SetLabel("items = frames");
}
BENCHMARK(BM_MediumStartFinish)->Arg(50)->Arg(200)->Arg(800);

/// Worst-case contention: every node of a dense mesh (cs-degree ~58)
/// starts transmitting at the same instant — the shape of a saturated
/// slot under backpressure-style scheduling. This is the case the
/// O(active x receptions) corruption scan made quadratic.
void BM_MediumDenseBurst(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto sc = scenarios::denseMesh(7, n, 2);
  Harness h{sc.topology};
  constexpr int kBursts = 4;
  std::int64_t frames = 0;
  for (auto _ : state) {
    for (int burst = 0; burst < kBursts; ++burst) {
      for (topo::NodeId s = 0; s < h.topo.numNodes(); ++s) {
        h.medium.startTransmission(dataFrame(s, 100));
      }
      h.sim.run();
      frames += h.topo.numNodes();
    }
  }
  state.SetItemsProcessed(frames);
  state.SetLabel("items = frames");
}
BENCHMARK(BM_MediumDenseBurst)->Arg(50)->Arg(200)->Arg(800);

/// Dense macro scenario: the full DES (DCF + GMP + queues) on a 60-node
/// dense mesh, measured as simulator events per wall-second. Bounds how
/// much of the end-to-end budget the frame pipeline still costs when the
/// whole stack runs above it.
void BM_MediumDenseMacro(benchmark::State& state) {
  const auto sc = scenarios::denseMesh(5, 60, 8);
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 3;
  net::Network net{sc.topology, cfg, sc.flows};
  net.run(Duration::seconds(1.0));  // warm up queues and GMP state
  const std::uint64_t eventsBefore = net.simulator().executedEvents();
  for (auto _ : state) {
    net.run(Duration::seconds(0.5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      net.simulator().executedEvents() - eventsBefore));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_MediumDenseMacro)->Unit(benchmark::kMillisecond);

/// Topology construction at scale: grid-bucketed neighbor discovery +
/// CSR assembly on a constant-density (~12 tx-degree) uniform layout.
/// Above the dense-adjacency threshold (2048 nodes) no n^2-bit matrices
/// are built, so memory — reported via the `bytes` counter — must track
/// nodes + edges. This is the N = 100k wall the old all-pairs loop
/// could not cross; tools/emit_bench_kernel.sh --topo snapshots it as
/// BENCH_topology.json.
void BM_TopologyConstruct(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const double side = scenarios::meshSideForDegree(n, 12.0);
  Rng rng{7};
  std::vector<topo::Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniformReal(0, side), rng.uniformReal(0, side)});
  }
  std::size_t bytes = 0;
  std::int64_t edges = 0;
  for (auto _ : state) {
    topo::Topology t = topo::Topology::fromPositions(pts);
    bytes = t.memoryFootprintBytes();
    edges = t.numEdges();
    benchmark::DoNotOptimize(t);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["edges"] = static_cast<double>(edges);
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("items = nodes");
}
BENCHMARK(BM_TopologyConstruct)
    ->Unit(benchmark::kMillisecond)
    ->Arg(800)
    ->Arg(5000)
    ->Arg(20000)
    ->Arg(100000);

/// The staggered start/finish workload on a sparse-mode mesh (above the
/// dense threshold): exercises the per-cs-neighbor corruption probe and
/// CSR row iteration that large-N simulations run on.
void BM_MediumSparseStartFinish(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto sc = scenarios::randomMesh(
      99, n, scenarios::meshSideForDegree(n, 5.0), 2);
  Harness h{topo::Topology::fromPositions(
      [&] {
        std::vector<topo::Point> pts;
        for (topo::NodeId a = 0; a < sc.topology.numNodes(); ++a) {
          pts.push_back(sc.topology.position(a));
        }
        return pts;
      }(),
      topo::RadioRanges{}, topo::TopologyOptions{0})};
  Rng rng{42};
  constexpr int kRounds = 2;
  std::int64_t frames = 0;
  for (auto _ : state) {
    for (int round = 0; round < kRounds; ++round) {
      for (topo::NodeId s = 0; s < h.topo.numNodes(); ++s) {
        h.sim.post(Duration::micros(rng.uniformInt(0, 400)),
                   [&h, s] { h.medium.startTransmission(dataFrame(s, 100)); });
      }
      h.sim.run();
      frames += h.topo.numNodes();
    }
  }
  state.SetItemsProcessed(frames);
  state.SetLabel("items = frames");
}
BENCHMARK(BM_MediumSparseStartFinish)->Arg(5000)->Arg(20000);

}  // namespace

BENCHMARK_MAIN();
