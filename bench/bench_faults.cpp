// Robustness experiment (no counterpart figure in the paper): GMP under
// fault injection on the Fig. 4 topology.
//
// Three sessions are compared against the fault-free baseline:
//   * a mid-session crash of a relay node with later recovery,
//   * 20 % bursty (Gilbert-Elliott) loss on control frames,
//   * both at once.
// Reported per session: fairness before/after the disruption, the dip
// depth, how many 4 s adjustment periods GMP needs to re-converge to
// I_eq >= 0.9 after recovery, and the packets lost to the fault.
#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/disruption.hpp"
#include "bench/bench_util.hpp"
#include "scenarios/scenarios.hpp"

namespace {

using namespace maxmin;

constexpr double kCrashSeconds = 120.0;
constexpr double kRecoverSeconds = 160.0;
constexpr double kPeriodSeconds = 4.0;

phys::ImpairmentConfig burstyControlLoss() {
  // ~20 % steady-state loss, bursty: pGoodToBad / (pGoodToBad +
  // pBadToGood) = 0.05 / 0.25 = 0.2 with full loss in the bad state.
  phys::ImpairmentConfig cfg;
  cfg.gilbert.pGoodToBad = 0.05;
  cfg.gilbert.pBadToGood = 0.20;
  cfg.gilbert.lossBad = 1.0;
  cfg.scope = phys::ImpairmentConfig::Scope::kControlFrames;
  return cfg;
}

struct SessionSpec {
  std::string name;
  bool crash = false;
  bool bursty = false;
};

void faultRow(Table& t, const scenarios::Scenario& sc,
              const SessionSpec& spec) {
  analysis::RunConfig cfg = bench::paperRunConfig(analysis::Protocol::kGmp);
  if (spec.crash) {
    cfg.faults = scenarios::midSessionRelayCrash(
        sc, Duration::seconds(kCrashSeconds),
        Duration::seconds(kRecoverSeconds - kCrashSeconds));
  }
  if (spec.bursty) cfg.netBase.impairments = burstyControlLoss();
  const auto result = analysis::runScenario(sc, cfg);

  std::map<net::FlowId, int> hops;
  for (const auto& f : result.flows) hops[f.id] = f.hops;

  analysis::DisruptionConfig dc;
  dc.faultPeriod = static_cast<int>(kCrashSeconds / kPeriodSeconds);
  dc.recoveryPeriod =
      spec.crash ? static_cast<int>(kRecoverSeconds / kPeriodSeconds) : -1;
  auto report = analysis::analyzeDisruption(result.rateHistory, hops, dc);
  report.packetsLost =
      result.crashDrops + result.deadNeighborDrops + result.queueDrops;

  t.addRow({spec.name, Table::num(report.baselineIeq, 3),
            Table::num(report.dipIeq, 3), Table::num(report.dipDepth(), 3),
            report.periodsToReconverge < 0
                ? "never"
                : std::to_string(report.periodsToReconverge),
            Table::num(result.summary.ieq, 3),
            std::to_string(report.packetsLost),
            std::to_string(result.framesImpaired)});
}

void reproduceFaults() {
  std::cout << "== GMP graceful degradation, Fig. 4 (crash at "
            << kCrashSeconds << " s, recovery at " << kRecoverSeconds
            << " s, 400 s session) ==\n";
  const auto sc = scenarios::fig4();
  Table t({"session", "I_eq before", "I_eq dip", "dip depth",
           "periods to I_eq>=0.9", "final I_eq", "pkts lost",
           "frames impaired"});
  faultRow(t, sc, {"fault-free", false, false});
  faultRow(t, sc, {"relay crash+recover", true, false});
  faultRow(t, sc, {"20% bursty ctrl loss", false, true});
  faultRow(t, sc, {"crash + bursty loss", true, true});
  t.print(std::cout);
  std::cout
      << "\nThe crash severs one parallel chain's 2-hop flow; fairness dips "
         "while the controller decays the orphaned flow's limit, then the "
         "pre-fault limit is restored on recovery and I_eq climbs back "
         "within a few adjustment periods. Bursty control-frame loss alone "
         "leaves the out-of-band adjustment loop intact (it stresses the "
         "in-band dissemination path measured in control_plane_test).\n\n";
}

void BM_DisruptionAnalysis(benchmark::State& state) {
  analysis::RateHistory history;
  for (int p = 0; p < 100; ++p) {
    std::map<net::FlowId, double> rates;
    for (net::FlowId f = 0; f < 8; ++f) {
      rates[f] = (p >= 30 && p < 40 && f == 0) ? 2.0 : 100.0;
    }
    history.push_back(rates);
  }
  std::map<net::FlowId, int> hops;
  for (net::FlowId f = 0; f < 8; ++f) hops[f] = 2;
  analysis::DisruptionConfig dc;
  dc.faultPeriod = 30;
  dc.recoveryPeriod = 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyzeDisruption(history, hops, dc));
  }
}
BENCHMARK(BM_DisruptionAnalysis);

}  // namespace

int main(int argc, char** argv) {
  reproduceFaults();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
