// Ablations over GMP's design parameters (DESIGN.md §5).
//
// Fast, broad sweeps run on the fluid substrate (same decision engine,
// deterministic network model); a narrower confirmation sweep runs on
// the packet-level simulator.
#include <benchmark/benchmark.h>

#include <iostream>
#include <numeric>

#include "analysis/experiment.hpp"
#include "fluid/fluid_gmp.hpp"
#include "scenarios/scenarios.hpp"
#include "util/table.hpp"

namespace {

using namespace maxmin;

constexpr double kCapacity = 580.0;

struct FluidOutcome {
  double minRate = 0;
  double maxRate = 0;
  int tailViolations = 0;  ///< violations over the final 50 periods
};

FluidOutcome runFluid(const scenarios::Scenario& sc, gmp::GmpParams params,
                      int periods) {
  fluid::FluidNetwork net{sc.topology, sc.flows, kCapacity};
  fluid::FluidGmpHarness harness{net, params};
  const auto rates = harness.run(periods);
  FluidOutcome out;
  out.minRate = rates.begin()->second;
  out.maxRate = rates.begin()->second;
  for (const auto& [id, r] : rates) {
    out.minRate = std::min(out.minRate, r);
    out.maxRate = std::max(out.maxRate, r);
  }
  const auto& hist = harness.violationHistory();
  const std::size_t tail = hist.size() > 50 ? hist.size() - 50 : 0;
  out.tailViolations =
      std::accumulate(hist.begin() + static_cast<std::ptrdiff_t>(tail),
                      hist.end(), 0);
  return out;
}

void sweepBeta() {
  // The fluid model is noise-free, so beta's role (absorbing measurement
  // noise) only shows on the packet-level simulator.
  std::cout << "== Ablation: equality tolerance beta "
               "(packet-level, Fig. 3, 400 s) ==\n"
            << "   paper default beta = 0.10\n";
  Table t({"beta", "I_mm", "I_eq", "U", "tail violations"});
  for (double beta : {0.025, 0.05, 0.10, 0.20, 0.40}) {
    analysis::RunConfig cfg;
    cfg.protocol = analysis::Protocol::kGmp;
    cfg.duration = Duration::seconds(400.0);
    cfg.warmup = Duration::seconds(240.0);
    cfg.seed = 11;
    cfg.gmpParams.beta = beta;
    const auto r = analysis::runScenario(scenarios::fig3(), cfg);
    const auto& hist = r.violationHistory;
    const std::size_t tail = hist.size() > 25 ? hist.size() - 25 : 0;
    const int tailViolations =
        std::accumulate(hist.begin() + static_cast<std::ptrdiff_t>(tail),
                        hist.end(), 0);
    t.addRow({Table::num(beta, 3), Table::num(r.summary.imm, 3),
              Table::num(r.summary.ieq, 3),
              Table::num(r.summary.effectiveThroughputPps),
              std::to_string(tailViolations)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void sweepBigGapFactor() {
  std::cout << "== Ablation: halve/double fast path threshold (fluid, "
               "Fig. 2) ==\n"
            << "   paper uses L1 > 3*S1; a huge factor disables the fast "
               "path\n";
  Table t({"bigGapFactor", "min rate", "max rate",
           "violations in last 50 periods"});
  for (double factor : {1.5, 3.0, 6.0, 1e9}) {
    gmp::GmpParams p;
    p.bigGapFactor = factor;
    const auto out = runFluid(scenarios::fig2(), p, 150);
    t.addRow({factor > 1e6 ? "disabled" : Table::num(factor, 1),
              Table::num(out.minRate), Table::num(out.maxRate),
              std::to_string(out.tailViolations)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void sweepAdditiveIncrease() {
  std::cout << "== Ablation: additive probe step (fluid, Fig. 2) ==\n"
            << "   larger probes rediscover bandwidth faster but "
               "overshoot more\n";
  Table t({"step (pkt/s)", "min rate", "max rate",
           "violations in last 50 periods"});
  for (double step : {2.0, 10.0, 40.0}) {
    gmp::GmpParams p;
    p.additiveIncreasePps = step;
    const auto out = runFluid(scenarios::fig2(), p, 150);
    t.addRow({Table::num(step, 0), Table::num(out.minRate),
              Table::num(out.maxRate), std::to_string(out.tailViolations)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void sweepOmegaAndPeriodOnDes() {
  std::cout << "== Ablation: Omega threshold and period length "
               "(packet-level, Fig. 3, 400 s) ==\n"
            << "   paper defaults: Omega threshold 0.25, period 4 s\n";
  Table t({"omega", "period (s)", "I_mm", "I_eq", "U"});
  const auto sc = scenarios::fig3();
  for (double omega : {0.10, 0.25, 0.50}) {
    for (double period : {2.0, 4.0, 8.0}) {
      if (omega != 0.25 && period != 4.0) continue;  // axis-aligned sweep
      analysis::RunConfig cfg;
      cfg.protocol = analysis::Protocol::kGmp;
      cfg.duration = Duration::seconds(400.0);
      cfg.warmup = Duration::seconds(240.0);
      cfg.seed = 11;
      cfg.gmpParams.omegaThreshold = omega;
      cfg.gmpParams.period = Duration::seconds(period);
      const auto r = analysis::runScenario(sc, cfg);
      t.addRow({Table::num(omega, 2), Table::num(period, 0),
                Table::num(r.summary.imm, 3), Table::num(r.summary.ieq, 3),
                Table::num(r.summary.effectiveThroughputPps)});
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

void sweepQueueCapacityOnDes() {
  std::cout << "== Ablation: per-destination queue capacity "
               "(packet-level, Fig. 3, 400 s; paper: 10) ==\n";
  Table t({"capacity (pkts)", "I_mm", "I_eq", "U"});
  const auto sc = scenarios::fig3();
  for (int capacity : {5, 10, 20, 50}) {
    analysis::RunConfig cfg;
    cfg.protocol = analysis::Protocol::kGmp;
    cfg.duration = Duration::seconds(400.0);
    cfg.warmup = Duration::seconds(240.0);
    cfg.seed = 11;
    cfg.netBase.queueCapacity = capacity;
    const auto r = analysis::runScenario(sc, cfg);
    t.addRow({std::to_string(capacity), Table::num(r.summary.imm, 3),
              Table::num(r.summary.ieq, 3),
              Table::num(r.summary.effectiveThroughputPps)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void BM_FluidGmpPeriodFig4(benchmark::State& state) {
  const auto sc = scenarios::fig4();
  fluid::FluidNetwork net{sc.topology, sc.flows, kCapacity};
  fluid::FluidGmpHarness harness{net, gmp::GmpParams{}};
  for (auto _ : state) {
    harness.step();
  }
}
BENCHMARK(BM_FluidGmpPeriodFig4);

}  // namespace

int main(int argc, char** argv) {
  sweepBeta();
  sweepBigGapFactor();
  sweepAdditiveIncrease();
  sweepOmegaAndPeriodOnDes();
  sweepQueueCapacityOnDes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
