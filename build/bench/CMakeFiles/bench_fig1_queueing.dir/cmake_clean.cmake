file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_queueing.dir/bench_fig1_queueing.cpp.o"
  "CMakeFiles/bench_fig1_queueing.dir/bench_fig1_queueing.cpp.o.d"
  "bench_fig1_queueing"
  "bench_fig1_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
