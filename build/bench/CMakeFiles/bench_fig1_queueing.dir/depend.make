# Empty dependencies file for bench_fig1_queueing.
# This may be replaced when dependencies are built.
