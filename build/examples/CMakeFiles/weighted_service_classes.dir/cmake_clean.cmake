file(REMOVE_RECURSE
  "CMakeFiles/weighted_service_classes.dir/weighted_service_classes.cpp.o"
  "CMakeFiles/weighted_service_classes.dir/weighted_service_classes.cpp.o.d"
  "weighted_service_classes"
  "weighted_service_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_service_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
