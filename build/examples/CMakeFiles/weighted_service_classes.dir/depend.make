# Empty dependencies file for weighted_service_classes.
# This may be replaced when dependencies are built.
