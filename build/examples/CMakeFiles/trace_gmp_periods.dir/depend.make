# Empty dependencies file for trace_gmp_periods.
# This may be replaced when dependencies are built.
