file(REMOVE_RECURSE
  "CMakeFiles/trace_gmp_periods.dir/trace_gmp_periods.cpp.o"
  "CMakeFiles/trace_gmp_periods.dir/trace_gmp_periods.cpp.o.d"
  "trace_gmp_periods"
  "trace_gmp_periods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_gmp_periods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
