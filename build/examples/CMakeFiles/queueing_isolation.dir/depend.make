# Empty dependencies file for queueing_isolation.
# This may be replaced when dependencies are built.
