file(REMOVE_RECURSE
  "CMakeFiles/queueing_isolation.dir/queueing_isolation.cpp.o"
  "CMakeFiles/queueing_isolation.dir/queueing_isolation.cpp.o.d"
  "queueing_isolation"
  "queueing_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
