# Empty dependencies file for mesh_gateway.
# This may be replaced when dependencies are built.
