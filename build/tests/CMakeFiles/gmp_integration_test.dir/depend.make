# Empty dependencies file for gmp_integration_test.
# This may be replaced when dependencies are built.
