file(REMOVE_RECURSE
  "CMakeFiles/gmp_integration_test.dir/gmp_integration_test.cpp.o"
  "CMakeFiles/gmp_integration_test.dir/gmp_integration_test.cpp.o.d"
  "gmp_integration_test"
  "gmp_integration_test.pdb"
  "gmp_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmp_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
