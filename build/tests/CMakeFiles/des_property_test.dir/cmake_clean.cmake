file(REMOVE_RECURSE
  "CMakeFiles/des_property_test.dir/des_property_test.cpp.o"
  "CMakeFiles/des_property_test.dir/des_property_test.cpp.o.d"
  "des_property_test"
  "des_property_test.pdb"
  "des_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
