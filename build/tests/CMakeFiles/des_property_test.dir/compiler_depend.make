# Empty compiler generated dependencies file for des_property_test.
# This may be replaced when dependencies are built.
