file(REMOVE_RECURSE
  "CMakeFiles/gmp_engine_test.dir/gmp_engine_test.cpp.o"
  "CMakeFiles/gmp_engine_test.dir/gmp_engine_test.cpp.o.d"
  "gmp_engine_test"
  "gmp_engine_test.pdb"
  "gmp_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmp_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
