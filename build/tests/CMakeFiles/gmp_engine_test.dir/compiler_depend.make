# Empty compiler generated dependencies file for gmp_engine_test.
# This may be replaced when dependencies are built.
