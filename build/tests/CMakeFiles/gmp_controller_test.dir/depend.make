# Empty dependencies file for gmp_controller_test.
# This may be replaced when dependencies are built.
