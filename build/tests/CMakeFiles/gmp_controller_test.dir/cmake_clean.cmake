file(REMOVE_RECURSE
  "CMakeFiles/gmp_controller_test.dir/gmp_controller_test.cpp.o"
  "CMakeFiles/gmp_controller_test.dir/gmp_controller_test.cpp.o.d"
  "gmp_controller_test"
  "gmp_controller_test.pdb"
  "gmp_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmp_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
