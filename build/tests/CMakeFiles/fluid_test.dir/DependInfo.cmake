
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fluid_test.cpp" "tests/CMakeFiles/fluid_test.dir/fluid_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_test.dir/fluid_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fluid/CMakeFiles/maxmin_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/maxmin_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/scenarios/CMakeFiles/maxmin_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/gmp/CMakeFiles/maxmin_gmp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/maxmin_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/maxmin_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/maxmin_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/maxmin_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/maxmin_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/maxmin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maxmin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
