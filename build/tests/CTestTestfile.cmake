# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/phys_test[1]_include.cmake")
include("/root/repo/build/tests/mac_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/gmp_engine_test[1]_include.cmake")
include("/root/repo/build/tests/fluid_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/scenarios_test[1]_include.cmake")
include("/root/repo/build/tests/gmp_integration_test[1]_include.cmake")
include("/root/repo/build/tests/control_plane_test[1]_include.cmake")
include("/root/repo/build/tests/des_property_test[1]_include.cmake")
include("/root/repo/build/tests/gmp_controller_test[1]_include.cmake")
