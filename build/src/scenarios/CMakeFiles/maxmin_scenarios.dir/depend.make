# Empty dependencies file for maxmin_scenarios.
# This may be replaced when dependencies are built.
