file(REMOVE_RECURSE
  "CMakeFiles/maxmin_scenarios.dir/scenarios.cpp.o"
  "CMakeFiles/maxmin_scenarios.dir/scenarios.cpp.o.d"
  "libmaxmin_scenarios.a"
  "libmaxmin_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
