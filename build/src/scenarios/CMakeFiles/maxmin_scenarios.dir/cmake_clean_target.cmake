file(REMOVE_RECURSE
  "libmaxmin_scenarios.a"
)
