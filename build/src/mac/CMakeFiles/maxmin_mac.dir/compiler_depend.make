# Empty compiler generated dependencies file for maxmin_mac.
# This may be replaced when dependencies are built.
