file(REMOVE_RECURSE
  "CMakeFiles/maxmin_mac.dir/dcf.cpp.o"
  "CMakeFiles/maxmin_mac.dir/dcf.cpp.o.d"
  "CMakeFiles/maxmin_mac.dir/params.cpp.o"
  "CMakeFiles/maxmin_mac.dir/params.cpp.o.d"
  "libmaxmin_mac.a"
  "libmaxmin_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
