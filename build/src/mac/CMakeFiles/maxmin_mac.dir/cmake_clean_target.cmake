file(REMOVE_RECURSE
  "libmaxmin_mac.a"
)
