file(REMOVE_RECURSE
  "libmaxmin_sim.a"
)
