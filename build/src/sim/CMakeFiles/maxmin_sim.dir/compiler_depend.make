# Empty compiler generated dependencies file for maxmin_sim.
# This may be replaced when dependencies are built.
