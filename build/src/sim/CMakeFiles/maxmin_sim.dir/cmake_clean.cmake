file(REMOVE_RECURSE
  "CMakeFiles/maxmin_sim.dir/simulator.cpp.o"
  "CMakeFiles/maxmin_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/maxmin_sim.dir/timer.cpp.o"
  "CMakeFiles/maxmin_sim.dir/timer.cpp.o.d"
  "libmaxmin_sim.a"
  "libmaxmin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
