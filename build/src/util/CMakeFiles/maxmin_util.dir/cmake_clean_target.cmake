file(REMOVE_RECURSE
  "libmaxmin_util.a"
)
