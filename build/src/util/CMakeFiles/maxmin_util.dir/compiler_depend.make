# Empty compiler generated dependencies file for maxmin_util.
# This may be replaced when dependencies are built.
