file(REMOVE_RECURSE
  "CMakeFiles/maxmin_util.dir/log.cpp.o"
  "CMakeFiles/maxmin_util.dir/log.cpp.o.d"
  "CMakeFiles/maxmin_util.dir/stats.cpp.o"
  "CMakeFiles/maxmin_util.dir/stats.cpp.o.d"
  "CMakeFiles/maxmin_util.dir/table.cpp.o"
  "CMakeFiles/maxmin_util.dir/table.cpp.o.d"
  "libmaxmin_util.a"
  "libmaxmin_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
