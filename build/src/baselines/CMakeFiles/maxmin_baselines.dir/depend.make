# Empty dependencies file for maxmin_baselines.
# This may be replaced when dependencies are built.
