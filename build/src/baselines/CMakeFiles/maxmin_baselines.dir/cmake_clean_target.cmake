file(REMOVE_RECURSE
  "libmaxmin_baselines.a"
)
