file(REMOVE_RECURSE
  "CMakeFiles/maxmin_baselines.dir/configs.cpp.o"
  "CMakeFiles/maxmin_baselines.dir/configs.cpp.o.d"
  "CMakeFiles/maxmin_baselines.dir/two_phase.cpp.o"
  "CMakeFiles/maxmin_baselines.dir/two_phase.cpp.o.d"
  "libmaxmin_baselines.a"
  "libmaxmin_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
