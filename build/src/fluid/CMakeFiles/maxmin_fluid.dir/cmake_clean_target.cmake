file(REMOVE_RECURSE
  "libmaxmin_fluid.a"
)
