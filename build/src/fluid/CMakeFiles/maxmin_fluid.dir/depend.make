# Empty dependencies file for maxmin_fluid.
# This may be replaced when dependencies are built.
