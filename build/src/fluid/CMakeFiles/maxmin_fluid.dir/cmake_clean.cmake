file(REMOVE_RECURSE
  "CMakeFiles/maxmin_fluid.dir/fluid_gmp.cpp.o"
  "CMakeFiles/maxmin_fluid.dir/fluid_gmp.cpp.o.d"
  "CMakeFiles/maxmin_fluid.dir/fluid_network.cpp.o"
  "CMakeFiles/maxmin_fluid.dir/fluid_network.cpp.o.d"
  "libmaxmin_fluid.a"
  "libmaxmin_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
