file(REMOVE_RECURSE
  "libmaxmin_gmp.a"
)
