# Empty compiler generated dependencies file for maxmin_gmp.
# This may be replaced when dependencies are built.
