file(REMOVE_RECURSE
  "CMakeFiles/maxmin_gmp.dir/controller.cpp.o"
  "CMakeFiles/maxmin_gmp.dir/controller.cpp.o.d"
  "CMakeFiles/maxmin_gmp.dir/dissemination.cpp.o"
  "CMakeFiles/maxmin_gmp.dir/dissemination.cpp.o.d"
  "CMakeFiles/maxmin_gmp.dir/engine.cpp.o"
  "CMakeFiles/maxmin_gmp.dir/engine.cpp.o.d"
  "CMakeFiles/maxmin_gmp.dir/neighborhood.cpp.o"
  "CMakeFiles/maxmin_gmp.dir/neighborhood.cpp.o.d"
  "libmaxmin_gmp.a"
  "libmaxmin_gmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_gmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
