# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("topology")
subdirs("phys")
subdirs("mac")
subdirs("net")
subdirs("gmp")
subdirs("fluid")
subdirs("baselines")
subdirs("scenarios")
subdirs("analysis")
