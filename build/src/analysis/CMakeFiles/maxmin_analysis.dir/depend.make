# Empty dependencies file for maxmin_analysis.
# This may be replaced when dependencies are built.
