file(REMOVE_RECURSE
  "CMakeFiles/maxmin_analysis.dir/convergence.cpp.o"
  "CMakeFiles/maxmin_analysis.dir/convergence.cpp.o.d"
  "CMakeFiles/maxmin_analysis.dir/experiment.cpp.o"
  "CMakeFiles/maxmin_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/maxmin_analysis.dir/maxmin_solver.cpp.o"
  "CMakeFiles/maxmin_analysis.dir/maxmin_solver.cpp.o.d"
  "CMakeFiles/maxmin_analysis.dir/metrics.cpp.o"
  "CMakeFiles/maxmin_analysis.dir/metrics.cpp.o.d"
  "libmaxmin_analysis.a"
  "libmaxmin_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
