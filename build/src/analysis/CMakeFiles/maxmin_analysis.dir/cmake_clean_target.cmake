file(REMOVE_RECURSE
  "libmaxmin_analysis.a"
)
