file(REMOVE_RECURSE
  "libmaxmin_phys.a"
)
