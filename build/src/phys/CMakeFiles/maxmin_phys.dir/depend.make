# Empty dependencies file for maxmin_phys.
# This may be replaced when dependencies are built.
