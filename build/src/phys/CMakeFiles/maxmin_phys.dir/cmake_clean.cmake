file(REMOVE_RECURSE
  "CMakeFiles/maxmin_phys.dir/frame_trace.cpp.o"
  "CMakeFiles/maxmin_phys.dir/frame_trace.cpp.o.d"
  "CMakeFiles/maxmin_phys.dir/medium.cpp.o"
  "CMakeFiles/maxmin_phys.dir/medium.cpp.o.d"
  "libmaxmin_phys.a"
  "libmaxmin_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
