file(REMOVE_RECURSE
  "CMakeFiles/maxmin_net.dir/network.cpp.o"
  "CMakeFiles/maxmin_net.dir/network.cpp.o.d"
  "CMakeFiles/maxmin_net.dir/node_stack.cpp.o"
  "CMakeFiles/maxmin_net.dir/node_stack.cpp.o.d"
  "CMakeFiles/maxmin_net.dir/packet_queue.cpp.o"
  "CMakeFiles/maxmin_net.dir/packet_queue.cpp.o.d"
  "libmaxmin_net.a"
  "libmaxmin_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
