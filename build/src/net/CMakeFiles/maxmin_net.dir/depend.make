# Empty dependencies file for maxmin_net.
# This may be replaced when dependencies are built.
