file(REMOVE_RECURSE
  "libmaxmin_net.a"
)
