file(REMOVE_RECURSE
  "CMakeFiles/maxmin_topology.dir/cliques.cpp.o"
  "CMakeFiles/maxmin_topology.dir/cliques.cpp.o.d"
  "CMakeFiles/maxmin_topology.dir/conflict_graph.cpp.o"
  "CMakeFiles/maxmin_topology.dir/conflict_graph.cpp.o.d"
  "CMakeFiles/maxmin_topology.dir/dominating_set.cpp.o"
  "CMakeFiles/maxmin_topology.dir/dominating_set.cpp.o.d"
  "CMakeFiles/maxmin_topology.dir/routing.cpp.o"
  "CMakeFiles/maxmin_topology.dir/routing.cpp.o.d"
  "CMakeFiles/maxmin_topology.dir/topology.cpp.o"
  "CMakeFiles/maxmin_topology.dir/topology.cpp.o.d"
  "libmaxmin_topology.a"
  "libmaxmin_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
