
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/cliques.cpp" "src/topology/CMakeFiles/maxmin_topology.dir/cliques.cpp.o" "gcc" "src/topology/CMakeFiles/maxmin_topology.dir/cliques.cpp.o.d"
  "/root/repo/src/topology/conflict_graph.cpp" "src/topology/CMakeFiles/maxmin_topology.dir/conflict_graph.cpp.o" "gcc" "src/topology/CMakeFiles/maxmin_topology.dir/conflict_graph.cpp.o.d"
  "/root/repo/src/topology/dominating_set.cpp" "src/topology/CMakeFiles/maxmin_topology.dir/dominating_set.cpp.o" "gcc" "src/topology/CMakeFiles/maxmin_topology.dir/dominating_set.cpp.o.d"
  "/root/repo/src/topology/routing.cpp" "src/topology/CMakeFiles/maxmin_topology.dir/routing.cpp.o" "gcc" "src/topology/CMakeFiles/maxmin_topology.dir/routing.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/topology/CMakeFiles/maxmin_topology.dir/topology.cpp.o" "gcc" "src/topology/CMakeFiles/maxmin_topology.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/maxmin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
