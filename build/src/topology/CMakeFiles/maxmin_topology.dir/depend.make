# Empty dependencies file for maxmin_topology.
# This may be replaced when dependencies are built.
