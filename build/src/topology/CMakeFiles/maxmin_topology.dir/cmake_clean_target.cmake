file(REMOVE_RECURSE
  "libmaxmin_topology.a"
)
