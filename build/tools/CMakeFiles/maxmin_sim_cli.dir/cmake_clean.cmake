file(REMOVE_RECURSE
  "CMakeFiles/maxmin_sim_cli.dir/maxmin_sim.cpp.o"
  "CMakeFiles/maxmin_sim_cli.dir/maxmin_sim.cpp.o.d"
  "maxmin-sim"
  "maxmin-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
