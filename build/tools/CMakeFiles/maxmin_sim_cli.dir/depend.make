# Empty dependencies file for maxmin_sim_cli.
# This may be replaced when dependencies are built.
