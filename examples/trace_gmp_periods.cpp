// Introspection example: traces GMP's internal state period by period —
// measured flow rates and limits, saturated virtual nodes, virtual-link
// classification (un/BF/BW = unsaturated / buffer-saturated /
// bandwidth-saturated), and the rate commands each adjustment period
// issues. Useful to watch the four local conditions steer the network
// into the maxmin fixed point.
//
//   ./build/examples/trace_gmp_periods [fig2|fig2w|fig3|fig4|fig1]
#include <iostream>

#include "baselines/configs.hpp"
#include "gmp/controller.hpp"
#include "net/network.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace maxmin;
  const std::string which = argc > 1 ? argv[1] : "fig3";
  const auto scenario = which == "fig2"   ? scenarios::fig2()
                        : which == "fig2w" ? scenarios::fig2({1, 2, 1, 3})
                        : which == "fig4" ? scenarios::fig4()
                        : which == "fig1" ? scenarios::fig1()
                                          : scenarios::fig3();
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 7;
  net::Network net{scenario.topology, cfg, scenario.flows};
  gmp::Controller ctrl{net, gmp::GmpParams{}};
  ctrl.start();

  for (int period = 1; period <= 100; ++period) {
    net.run(Duration::seconds(4.0));
    const auto& s = ctrl.lastSnapshot();
    const auto& r = ctrl.lastReport();
    std::cout << "p" << period << " viol(sb=" << r.sourceBufferViolations
              << ",bw=" << r.bandwidthViolations << ") flows:";
    for (const auto& f : s.flows) {
      std::cout << " f" << f.id << "=" << static_cast<int>(f.ratePps)
                << (f.limitPps ? "(L" + std::to_string(static_cast<int>(
                                     *f.limitPps)) + ")"
                               : "(-)");
    }
    std::cout << " sat:";
    for (const auto& [nd, sat] : s.saturated) {
      if (sat) std::cout << " " << nd.first << "@" << nd.second;
    }
    std::cout << " vlinks:";
    for (const auto& vl : s.vlinks) {
      std::cout << " " << vl.key.from << ">" << vl.key.to << "="
                << static_cast<int>(vl.normRate)
                << (vl.type == gmp::LinkType::kBandwidthSaturated
                        ? "BW"
                        : (vl.type == gmp::LinkType::kBufferSaturated ? "BF"
                                                                      : "un"));
    }
    std::cout << " cmds:";
    for (const auto& c : r.commands) {
      if (c.kind == gmp::Command::Kind::kRemoveLimit) {
        std::cout << " f" << c.flow << ":rm";
      } else {
        std::cout << " f" << c.flow << ":" << static_cast<int>(c.limitPps);
      }
    }
    std::cout << "\n";
  }
  return 0;
}
