// Wireless mesh with an Internet gateway: the deployment the paper's
// introduction motivates. Many client nodes send to a single gateway
// ("in a mesh network, many flows may destine for the same destination,
// i.e., the gateway to the Internet", §5.1), so the whole network is one
// virtual network and per-destination queueing costs a single queue per
// node.
//
// Plain 802.11 starves the far clients; GMP equalizes everyone
// regardless of hop count.
//
//   ./build/examples/mesh_gateway
#include <iostream>

#include "analysis/experiment.hpp"
#include "scenarios/scenarios.hpp"
#include "util/table.hpp"

int main() {
  using namespace maxmin;

  // A 3x3 grid; the gateway is the corner node 0. Clients at increasing
  // distances send upstream.
  std::vector<topo::Point> pts;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      pts.push_back({200.0 * x, 200.0 * y});
    }
  }
  scenarios::Scenario scenario;
  scenario.name = "mesh-gateway";
  scenario.topology = topo::Topology::fromPositions(pts);
  const topo::NodeId gateway = 0;
  int id = 0;
  for (topo::NodeId client : {2, 4, 6, 8}) {  // 2, 1, 1 and 2+ hops away
    net::FlowSpec f;
    f.id = id++;
    f.src = client;
    f.dst = gateway;
    f.weight = 1.0;
    f.desiredRate = PacketRate::perSecond(800.0);
    f.name = "client-" + std::to_string(client);
    scenario.flows.push_back(f);
  }

  analysis::RunConfig config;
  config.duration = Duration::seconds(400.0);
  config.warmup = Duration::seconds(240.0);
  config.seed = 17;

  std::cout << "Four mesh clients uploading to a gateway (3x3 grid, "
               "gateway at a corner):\n\n";
  Table t({"flow", "hops", "802.11 (pkt/s)", "GMP (pkt/s)"});
  config.protocol = analysis::Protocol::kDcf80211;
  const auto dcf = analysis::runScenario(scenario, config);
  config.protocol = analysis::Protocol::kGmp;
  const auto gmp = analysis::runScenario(scenario, config);
  for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
    t.addRow({scenario.flows[i].name, std::to_string(gmp.flows[i].hops),
              Table::num(dcf.flows[i].ratePps),
              Table::num(gmp.flows[i].ratePps)});
  }
  t.print(std::cout);

  Table m({"metric", "802.11", "GMP"});
  m.addRow({"I_mm", Table::num(dcf.summary.imm, 3),
            Table::num(gmp.summary.imm, 3)});
  m.addRow({"I_eq", Table::num(dcf.summary.ieq, 3),
            Table::num(gmp.summary.ieq, 3)});
  m.addRow({"U (pkt*hops/s)", Table::num(dcf.summary.effectiveThroughputPps),
            Table::num(gmp.summary.effectiveThroughputPps)});
  m.addRow({"queue drops", std::to_string(dcf.queueDrops),
            std::to_string(gmp.queueDrops)});
  std::cout << '\n';
  m.print(std::cout);
  return 0;
}
