// Quickstart: simulate the paper's Fig. 3 chain under plain 802.11, 2PP
// and GMP, and print per-flow rates with the fairness metrics of §7.2.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "analysis/experiment.hpp"
#include "scenarios/scenarios.hpp"
#include "util/table.hpp"

int main() {
  using namespace maxmin;

  const scenarios::Scenario scenario = scenarios::fig3();

  analysis::RunConfig config;
  config.duration = Duration::seconds(200.0);
  config.warmup = Duration::seconds(120.0);
  config.seed = 7;

  Table table({"flow", "802.11", "2PP", "GMP"});
  std::vector<analysis::RunResult> results;
  for (const auto protocol :
       {analysis::Protocol::kDcf80211, analysis::Protocol::kTwoPhase,
        analysis::Protocol::kGmp}) {
    config.protocol = protocol;
    results.push_back(analysis::runScenario(scenario, config));
  }

  for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
    table.addRow({scenario.flows[i].name,
                  Table::num(results[0].flows[i].ratePps),
                  Table::num(results[1].flows[i].ratePps),
                  Table::num(results[2].flows[i].ratePps)});
  }
  table.addRow({"U", Table::num(results[0].summary.effectiveThroughputPps),
                Table::num(results[1].summary.effectiveThroughputPps),
                Table::num(results[2].summary.effectiveThroughputPps)});
  table.addRow({"I_mm", Table::num(results[0].summary.imm, 3),
                Table::num(results[1].summary.imm, 3),
                Table::num(results[2].summary.imm, 3)});
  table.addRow({"I_eq", Table::num(results[0].summary.ieq, 3),
                Table::num(results[1].summary.ieq, 3),
                Table::num(results[2].summary.ieq, 3)});

  std::cout << "Three flows to a common sink on a 4-node chain "
               "(paper Fig. 3 / Table 3 shape):\n\n";
  table.print(std::cout);

  std::cout << "\nGMP condition violations per 4 s period (should decay): ";
  for (int v : results[2].violationHistory) std::cout << v << ' ';
  std::cout << '\n';
  return 0;
}
