// Per-destination queueing isolation (the paper's Figure 1 argument,
// §5.1) demonstrated with the library's queue disciplines directly.
//
// Two flows leave the same source: f1 pushes 800 pkt/s down a congested
// 3-hop chain; f2 wants a modest 100 pkt/s to the direct neighbor. With
// one shared queue per node (Fig. 1b), f1's backpressure fills the shared
// buffer and chains f2 to a trickle. With one queue per destination
// (Fig. 1c), f2 sends at its desirable rate — "isolation" between
// packets for different destinations.
//
//   ./build/examples/queueing_isolation
#include <iostream>

#include "baselines/configs.hpp"
#include "net/network.hpp"
#include "util/table.hpp"

int main() {
  using namespace maxmin;

  auto topo = topo::Topology::fromPositions(
      {{0, 0}, {200, 0}, {400, 0}, {600, 0}});
  std::vector<net::FlowSpec> flows(2);
  flows[0].id = 0;
  flows[0].src = 0;
  flows[0].dst = 3;
  flows[0].desiredRate = PacketRate::perSecond(800.0);
  flows[0].name = "f1 (3 hops, saturating)";
  flows[1].id = 1;
  flows[1].src = 0;
  flows[1].dst = 1;
  flows[1].desiredRate = PacketRate::perSecond(100.0);
  flows[1].name = "f2 (1 hop, wants 100)";

  std::cout << "Two flows from one source; only the queueing discipline "
               "changes:\n\n";
  Table t({"queueing", "r(f1)", "r(f2)", "f2 achieved its desirable rate?"});
  for (bool perDestination : {false, true}) {
    net::NetworkConfig cfg;
    cfg.seed = 9;
    if (perDestination) {
      cfg = baselines::configGmp({});
      cfg.seed = 9;
    } else {
      cfg.discipline = net::QueueDiscipline::kSharedFifo;
      cfg.congestionAvoidance = true;  // same backpressure, one queue
      cfg.sharedBufferCapacity = 10;
    }
    net::Network net{topo, cfg, flows};
    net.run(Duration::seconds(30.0));
    const auto s0 = net.snapshotDeliveries();
    net.run(Duration::seconds(60.0));
    const auto rates = net::Network::ratesBetween(s0, net.snapshotDeliveries());
    t.addRow({perDestination ? "one queue per destination (Fig. 1c)"
                             : "one shared queue per node (Fig. 1b)",
              Table::num(rates.at(0)), Table::num(rates.at(1)),
              rates.at(1) > 90.0 ? "yes" : "no"});
  }
  t.print(std::cout);
  std::cout << "\nNote: per-flow queueing would achieve the same isolation "
               "here, but needs one queue per flow; per-destination "
               "queueing needs one per served destination (paper §5.1).\n";
  return 0;
}
