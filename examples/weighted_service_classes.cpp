// Weighted bandwidth allocation via GMP: three service classes.
//
// The paper's motivating use case (§2.1): "we may establish several
// service classes in the network and assign larger weights to
// applications belonging to higher classes." This example puts six flows
// on a random mesh — two gold (weight 4), two silver (weight 2), two
// bronze (weight 1) — and shows that GMP drives the *normalized* rates
// r(f)/w(f) toward equality, i.e. directly-competing flows receive
// bandwidth in proportion to their weights.
//
//   ./build/examples/weighted_service_classes
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/maxmin_solver.hpp"
#include "baselines/two_phase.hpp"
#include "scenarios/scenarios.hpp"
#include "util/table.hpp"

int main() {
  using namespace maxmin;

  // A reproducible 10-node mesh with six multi-hop flows...
  scenarios::Scenario scenario = scenarios::randomMesh(/*seed=*/4, 10, 900.0, 6);
  scenario.name = "service-classes";
  // ...assigned to service classes by flow id.
  const char* className[] = {"gold", "gold", "silver", "silver",
                             "bronze", "bronze"};
  const double classWeight[] = {4, 4, 2, 2, 1, 1};
  for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
    scenario.flows[i].weight = classWeight[i];
    scenario.flows[i].name = std::string(className[i]) + "-" +
                             std::to_string(i % 2 + 1);
  }

  analysis::RunConfig config;
  config.protocol = analysis::Protocol::kGmp;
  config.duration = Duration::seconds(400.0);
  config.warmup = Duration::seconds(240.0);
  config.seed = 21;
  const auto result = analysis::runScenario(scenario, config);

  // Centralized weighted-maxmin reference for comparison.
  const auto model = analysis::buildCliqueModel(
      scenario.topology, scenario.flows,
      baselines::nominalLinkCapacityPps(mac::MacParams{},
                                        DataSize::bytes(1024)));
  const auto reference = analysis::solveWeightedMaxmin(model);

  std::cout << "GMP weighted maxmin across three service classes "
               "(10-node mesh, 6 flows):\n\n";
  Table t({"flow", "class weight", "hops", "rate (pkt/s)",
           "normalized r/w", "centralized reference"});
  for (const auto& f : result.flows) {
    t.addRow({f.name, Table::num(f.weight, 0), std::to_string(f.hops),
              Table::num(f.ratePps), Table::num(f.ratePps / f.weight),
              Table::num(reference.at(f.id))});
  }
  t.print(std::cout);

  std::cout << "\nEquality index over normalized rates (1.0 = perfectly "
               "weighted-fair): "
            << Table::num(result.normalizedSummary.ieq, 3) << '\n'
            << "Queue drops (lossless backpressure): " << result.queueDrops
            << '\n';
  return 0;
}
